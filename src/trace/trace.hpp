// iosim: flight-recorder event tracing.
//
// A Tracer records structured events (spans, instants, counters) into a
// bounded ring buffer and exports them as Chrome/Perfetto trace-event JSON
// (open in chrome://tracing or ui.perfetto.dev) or CSV. Every layer of the
// simulator carries instrumentation sites guarded by `trace::tracer()`:
// when no tracer is installed the cost is one pointer load per site, so
// bench numbers are unaffected; when one is installed, a whole 4-host sort
// run — bio-level spans, elevator-switch drains, phase transitions, task
// lifecycles — lands on one timeline.
//
// Determinism: timestamps come exclusively from sim::Simulator::now()
// passed in by the call sites, string ids are assigned in emission order,
// and the exporters format from integers only — two same-seed runs produce
// byte-identical trace files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "trace/hint.hpp"

namespace iosim::trace {

/// Interned-string id. 0 is reserved for "absent".
using Str = std::uint32_t;
inline constexpr Str kNoStr = 0;

/// Chrome trace-event phase letters (the subset we emit).
enum class Ph : char {
  kBegin = 'B',    // span open (nesting, per track)
  kEnd = 'E',      // span close
  kComplete = 'X', // span with explicit duration
  kInstant = 'i',  // point event
  kCounter = 'C',  // sampled numeric value
};

/// One recorded event. Fixed-size POD so the ring buffer is a flat array;
/// strings are interned. Up to three integer arguments with interned names.
struct Event {
  Ph ph = Ph::kInstant;
  Str name = kNoStr;
  Str cat = kNoStr;
  std::uint32_t track = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  // kComplete only
  Str arg_name[3] = {kNoStr, kNoStr, kNoStr};
  std::int64_t arg[3] = {0, 0, 0};
};

struct TracerConfig {
  /// Ring capacity in events; once full the oldest events are dropped and
  /// `dropped()` counts them (reported in the export too).
  std::size_t capacity = 1u << 20;
  /// Capacity of the pinned store for rare structural events (elevator
  /// switches, phase transitions, job milestones, ...) which must survive
  /// ring overflow on long runs. Once full, pinned events fall back to the
  /// ring. See Tracer::pin_name.
  std::size_t pinned_capacity = 1u << 16;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig cfg = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Intern a string; equal strings get equal ids, assigned in first-use
  /// order (deterministic for a deterministic emission sequence).
  Str intern(std::string_view s);
  const std::string& str(Str id) const { return strings_[id]; }

  /// Get-or-create the track (Chrome "tid") named `name`. Track names are
  /// exported as thread_name metadata, kept outside the ring so they
  /// survive overflow.
  std::uint32_t track(std::string_view name);

  /// Mark a name as pinned: events with this name go to the bounded pinned
  /// store instead of the ring, so a flood of bio-level events cannot push
  /// out the rare structural ones. The constructor pre-pins the milestone
  /// names in CommonIds (elv switch, phase, job lifecycle, ...).
  void pin_name(Str name);
  bool is_pinned(Str name) const {
    return name < pinned_names_.size() && pinned_names_[name] != 0;
  }

  void emit(const Event& e);

  // -- convenience emitters (all timestamps are simulated time) --
  void instant(std::uint32_t track, Str name, Str cat, sim::Time ts,
               Str a0n = kNoStr, std::int64_t a0 = 0, Str a1n = kNoStr,
               std::int64_t a1 = 0, Str a2n = kNoStr, std::int64_t a2 = 0);
  void complete(std::uint32_t track, Str name, Str cat, sim::Time begin,
                sim::Time end, Str a0n = kNoStr, std::int64_t a0 = 0,
                Str a1n = kNoStr, std::int64_t a1 = 0, Str a2n = kNoStr,
                std::int64_t a2 = 0);
  void begin(std::uint32_t track, Str name, Str cat, sim::Time ts,
             Str a0n = kNoStr, std::int64_t a0 = 0);
  void end(std::uint32_t track, Str name, sim::Time ts);
  void counter(std::uint32_t track, Str name, sim::Time ts, std::int64_t value);

  /// Events currently held (ring + pinned, <= capacity + pinned_capacity).
  std::size_t size() const { return count_ + pinned_.size(); }
  /// Events held in the pinned store only.
  std::size_t pinned_size() const { return pinned_.size(); }
  /// Events pushed out of the ring by overflow.
  std::uint64_t dropped() const { return dropped_; }
  /// Total events ever emitted (size() + dropped()).
  std::uint64_t emitted() const { return emitted_; }
  std::size_t n_tracks() const { return track_names_.size(); }

  /// Visit held events: pinned store first, then the ring oldest-first
  /// (each in emission order; exports follow the same order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const Event& e : pinned_) fn(e);
    for (std::size_t i = 0; i < count_; ++i) {
      fn(ring_[(head_ + i) % ring_.size()]);
    }
  }

  /// Chrome trace-event JSON (object form, with thread-name metadata and
  /// the drop counter under "otherData").
  std::string to_json() const;
  /// Flat CSV: one row per event, interned strings resolved.
  std::string to_csv() const;
  /// Write to_json() (or to_csv() when `csv`) to `path`; false on I/O error.
  bool write_file(const std::string& path, bool csv = false) const;

  /// Pre-interned names for the hot instrumentation sites, so call sites
  /// avoid a hash lookup per string per event.
  struct CommonIds {
    Str cat_blk, cat_disk, cat_virt, cat_core, cat_mapred, cat_meta, cat_fault;
    Str rq_read, rq_write, rq_service, bio_submit, bio_merge;
    Str elv_switch, elv_retarget, drain_done, disk_io;
    Str phase, pair_switch, fg_switch, fg_sample, probe, profile, vm_boot;
    Str map_span, shuffle_span, reduce_span;
    Str job_start, first_map_done, maps_done, shuffle_done, job_done;
    Str fault, io_error, vm_down, vm_up, switch_fail;
    Str task_fail, task_retry, task_speculate, hdfs_failover, fetch_retry;
    Str job_failed;
    Str lba, sectors, value, index, pair, host, task, bytes, target, share;
    Str queued, in_flight, read_mb_s, write_mb_s, attempt;
    // Attribution / observability (obs/): lane summaries, stall markers,
    // and the ring-overflow marker. All pinned.
    Str cat_obs, io_stall, io_stall_wait, obs_summary, trace_overflow;
    Str obs_lane[6];  // "obs guest_queue" .. "obs total", Lane order
    Str obs_total_win;
    Str count, sum_ns, max_ns, p50_ns, p95_ns, p99_ns;
    Str elv_wait_ns, service_ns, total_ns, writes_ahead, reads_ahead, stalls;
  };
  CommonIds ids;

 private:
  std::vector<Event> ring_;
  std::size_t head_ = 0;   // oldest event
  std::size_t count_ = 0;  // held events in the ring
  std::vector<Event> pinned_;  // pinned-name events, emission order
  std::size_t pinned_capacity_ = 0;
  std::vector<char> pinned_names_;  // Str -> pinned? (indexed, not a set)
  std::uint64_t dropped_ = 0;
  std::uint64_t emitted_ = 0;

  std::vector<std::string> strings_;  // [0] = ""
  std::unordered_map<std::string, Str> string_ids_;
  std::vector<Str> track_names_;  // track id -> name id
  std::unordered_map<std::string, std::uint32_t> track_ids_;
};

/// Per-thread tracer. Null (the default) means tracing is off and every
/// instrumentation site reduces to a pointer load + branch. Each simulation
/// is single-threaded, but the experiment engine fans independent
/// simulations out across worker threads — the pointer is thread_local so
/// a tracer installed on the main thread is never shared with (or clobbered
/// by) a worker's simulation. Workers that want tracing install their own.
/// The pointer is an inline variable so the off-check compiles to exactly
/// that load + branch — an out-of-line accessor call per bio would be
/// measurable on the hot path.
namespace detail {
inline thread_local Tracer* g_tracer = nullptr;
}
/// The return is hinted null-expected (see hint.hpp): call sites fall
/// straight through when tracing is off and the emit code moves off the
/// hot path's cache lines.
inline Tracer* tracer() {
  Tracer* t = detail::g_tracer;
  return detail::unlikely_on(t != nullptr) ? t : nullptr;
}
inline void set_tracer(Tracer* t) { detail::g_tracer = t; }

/// RAII install/uninstall of a tracer as the process global.
class TraceSession {
 public:
  explicit TraceSession(TracerConfig cfg = {}) : tracer_(cfg), prev_(trace::tracer()) {
    set_tracer(&tracer_);
  }
  ~TraceSession() { set_tracer(prev_); }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  Tracer& tracer() { return tracer_; }

 private:
  Tracer tracer_;
  Tracer* prev_;
};

}  // namespace iosim::trace
