// iosim: named metrics registry — counters, gauges, and log-bucketed
// histograms, registered by name on first touch and flushed as a table at
// the end of a run (metrics::registry_table renders it through
// metrics::Table).
//
// Like the tracer, the registry is reached through a thread-local pointer
// that is null by default: instrumentation sites pay one load + branch when
// metrics are off. Iteration order is first-registration order, which is
// deterministic for a deterministic run.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/hint.hpp"

namespace iosim::trace {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::int64_t d = 1) { v_ += d; }
  std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

/// Last-written numeric value.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Log2-bucketed histogram of non-negative integers (latencies in ns, sizes
/// in bytes, ...). Bucket b holds values in [2^(b-1), 2^b); bucket 0 holds
/// everything <= 0. Quantiles are estimated by linear interpolation inside
/// the selected bucket, so they are exact to within a factor of 2 — plenty
/// for order-of-magnitude latency reporting at O(1) memory.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for a value: 0 for v <= 0, else bit_width(v) (1..63).
  static int bucket_of(std::int64_t v) {
    if (v <= 0) return 0;
    return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
  }
  /// Inclusive lower bound of bucket b (0 for b == 0).
  static std::int64_t bucket_lo(int b) { return b <= 0 ? 0 : std::int64_t{1} << (b - 1); }
  /// Exclusive upper bound of bucket b (1 for b == 0).
  static std::int64_t bucket_hi(int b) {
    return b <= 0 ? 1 : (b >= 63 ? std::numeric_limits<std::int64_t>::max()
                                 : std::int64_t{1} << b);
  }

  void record(std::int64_t v) {
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
    ++n_;
    sum_ += static_cast<double>(v);
    if (n_ == 1 || v < min_) min_ = v;
    if (n_ == 1 || v > max_) max_ = v;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  std::int64_t min() const { return n_ ? min_ : 0; }
  std::int64_t max() const { return n_ ? max_ : 0; }
  std::uint64_t bucket_count(int b) const { return buckets_[static_cast<std::size_t>(b)]; }

  /// Estimated q-quantile (q in [0,1]).
  double quantile(double q) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

class Registry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Item {
    std::string name;
    Kind kind;
    std::size_t idx;  // index into the per-kind store
  };

  /// Get-or-create by name. Returned references stay valid for the
  /// registry's lifetime (deque storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All registered metrics in first-touch order.
  const std::vector<Item>& items() const { return items_; }
  const Counter& counter_at(std::size_t idx) const { return counters_[idx]; }
  const Gauge& gauge_at(std::size_t idx) const { return gauges_[idx]; }
  const Histogram& histogram_at(std::size_t idx) const { return histograms_[idx]; }
  std::size_t size() const { return items_.size(); }

 private:
  std::vector<Item> items_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::unordered_map<std::string, std::size_t> by_name_[3];  // per Kind
};

/// Per-thread registry; null (default) = metrics collection off. Inline
/// variable for the same hot-path reason as trace::tracer(), thread_local
/// for the same executor-isolation reason: parallel sweep workers must not
/// interleave their counters into a registry the main thread installed.
namespace detail {
inline thread_local Registry* g_registry = nullptr;
}
/// Same disabled-is-expected branch hint as trace::tracer(): metrics-off
/// call sites fall straight through and the recording code moves off the
/// hot path's cache lines.
inline Registry* registry() {
  Registry* r = detail::g_registry;
  return detail::unlikely_on(r != nullptr) ? r : nullptr;
}
inline void set_registry(Registry* r) { detail::g_registry = r; }

/// RAII install/uninstall of a registry as the process global.
class MetricsSession {
 public:
  MetricsSession() : prev_(trace::registry()) { set_registry(&registry_); }
  ~MetricsSession() { set_registry(prev_); }
  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  Registry& registry() { return registry_; }

 private:
  Registry registry_;
  Registry* prev_;
};

}  // namespace iosim::trace
