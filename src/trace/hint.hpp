// iosim: branch hint shared by the tracer and metrics-registry accessors.
//
// Benches and production sweeps run with tracing/metrics OFF, so the null
// instrumentation pointer is the expected case at every guard site. The
// hint (propagated through the inline accessors into every
// `if (auto* tr = trace::tracer())` site) makes the compiler lay the emit
// code out of the fall-through path: the disabled check costs a load plus
// one never-taken forward branch, and the hot loop's i-cache footprint
// excludes all the argument marshalling.
#pragma once

namespace iosim::trace::detail {

#if defined(__GNUC__) || defined(__clang__)
inline bool unlikely_on(bool enabled) {
  return __builtin_expect(enabled, false);
}
#else
inline bool unlikely_on(bool enabled) { return enabled; }
#endif

}  // namespace iosim::trace::detail
