// iosim: the JobTracker slot-arbitration seam between one Job and a
// multi-tenant cluster.
//
// A single job owns its TaskTracker slots outright (the per-VM free-slot
// vectors inside Job) — that private fast path is byte-identical to every
// pre-tenancy build and stays the default. When several jobs share one
// cluster, the stream engine installs a SlotArbiter on each Job before
// run(): every slot acquire/release then routes through the arbiter, which
// enforces both the physical per-VM capacity (TaskTracker map/reduce slot
// counts) and the scheduling policy's cluster-wide quota (FIFO / Fair /
// Capacity — see tenancy/policy.hpp for the implementations).
//
// The interface lives in mapred/ so Job depends only on this abstract seam;
// the policy machinery above it lives in tenancy/ and is free to look at
// every registered job's demand. Determinism contract: can_acquire must be
// a pure function of arbiter state (no clocks, no randomness), so the same
// event order always grants the same slots.
#pragma once

namespace iosim::mapred {

class SlotArbiter {
 public:
  virtual ~SlotArbiter() = default;

  /// Whether `job_id` may take one more map slot on VM `vm` right now —
  /// true only when the VM has spare physical capacity AND the policy's
  /// quota for the job is not exhausted. Must not mutate state.
  virtual bool can_acquire_map(int job_id, int vm) const = 0;
  virtual void acquire_map(int job_id, int vm) = 0;
  virtual void release_map(int job_id, int vm) = 0;

  virtual bool can_acquire_reduce(int job_id, int vm) const = 0;
  virtual void acquire_reduce(int job_id, int vm) = 0;
  virtual void release_reduce(int job_id, int vm) = 0;

  /// Release everything `job_id` still holds (job abort / retirement). The
  /// arbiter owns the holdings ledger, so it can return leaked slots even
  /// when the job lost track of them.
  virtual void retire_job(int job_id) = 0;
};

}  // namespace iosim::mapred
