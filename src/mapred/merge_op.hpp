// iosim: a k-way merge pass as an I/O + CPU pipeline.
//
// Reads `inputs` round-robin in io-unit chunks (the alternation across
// segment files is what makes merge reads seeky), runs the per-byte CPU cost
// on the VM's vCPU, and writes `write_ratio` output bytes per input byte as
// an async stream. Used for map-side spill merges and the reduce-side
// merge/reduce phase (where write_ratio is the workload's reduce output
// ratio).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mapred/cluster_env.hpp"
#include "sim/time.hpp"

namespace iosim::mapred {

struct MergeInput {
  disk::Lba vlba = 0;
  std::int64_t bytes = 0;
};

struct MergeOpParams {
  std::vector<MergeInput> inputs;
  /// Destination of the merged output on the same VM (ignored if the
  /// effective output size is zero).
  disk::Lba out_vlba = 0;
  /// Output bytes per input byte (1.0 for a plain merge).
  double write_ratio = 1.0;
  /// CPU cost per input byte (merge comparisons + user reduce function).
  double cpu_ns_per_byte = 0.0;
  std::int64_t io_unit_bytes = 256 * 1024;
  /// Parallel read window (pipeline depth).
  int window = 2;
  /// Invoked as input bytes are consumed (progress reporting).
  std::function<void(std::int64_t bytes_done, std::int64_t bytes_total)> on_progress;
  /// Polled before issuing each read/write. When it returns true the op
  /// stops issuing, drains what is outstanding and reports kError — the
  /// killed task's process is gone, so no new I/O may reach the disk.
  std::function<bool()> cancelled;
};

/// Fire-and-forget; `on_done` runs after every read, burst and write has
/// completed. Lifetime is self-managed. A failed read or write stops new
/// issue, drains what is outstanding, and reports kError once.
class MergeOp {
 public:
  static void run(const VmHandle& vm, std::uint64_t io_ctx, MergeOpParams params,
                  iosched::CompletionFn on_done);

 private:
  struct Cursor {
    disk::Lba next;
    std::int64_t remaining;
  };

  MergeOp(const VmHandle& vm, std::uint64_t io_ctx, MergeOpParams params,
          iosched::CompletionFn on_done);

  void pump(std::shared_ptr<MergeOp> self);
  void unit_read_done(std::shared_ptr<MergeOp> self, std::int64_t unit_bytes, sim::Time t);
  void maybe_finish(sim::Time t);

  VmHandle vm_;
  std::uint64_t io_ctx_;
  MergeOpParams p_;
  iosched::CompletionFn on_done_;

  std::vector<Cursor> cursors_;
  std::size_t rr_ = 0;            // round-robin input cursor
  std::int64_t total_in_ = 0;
  std::int64_t read_issued_ = 0;
  std::int64_t read_done_ = 0;
  std::int64_t write_pending_bytes_ = 0;  // fractional carry for write_ratio
  disk::Lba out_next_ = 0;
  int inflight_ = 0;              // reads in the window
  int cpu_write_inflight_ = 0;    // units in CPU/write stages
  bool failed_ = false;           // stop issuing; drain and report kError
  bool done_fired_ = false;
};

}  // namespace iosim::mapred
