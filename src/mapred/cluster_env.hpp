// iosim: the environment a job executes against — VMs with their vCPUs, the
// network, and the HDFS namespace. Built by the cluster module; consumed by
// Job / MapTask / ReduceTask.
#pragma once

#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "hdfs/hdfs.hpp"
#include "mapred/vcpu.hpp"
#include "net/flow_network.hpp"
#include "virt/domu.hpp"

namespace iosim::mapred {

/// One TaskTracker VM.
struct VmHandle {
  sim::Simulator* simr = nullptr;
  virt::DomU* vm = nullptr;
  VCpu* cpu = nullptr;
  int host = 0;       // physical host index (network endpoint)
  int global_id = 0;  // dense VM index across the cluster
};

struct ClusterEnv {
  sim::Simulator* simr = nullptr;
  net::FlowNetwork* net = nullptr;
  hdfs::Hdfs* dfs = nullptr;
  /// Fault injector, or null when the cluster runs fault-free.
  fault::FaultInjector* faults = nullptr;
  std::vector<VmHandle> vms;

  int n_vms() const { return static_cast<int>(vms.size()); }
  /// Whether VM `vm` is currently up (always true without fault injection).
  bool vm_alive(int vm) const { return faults == nullptr || !faults->vm_down(vm); }
};

/// Guest-level context-id scheme: every task / service gets a distinct
/// elevator context inside its VM.
namespace ctx {
inline std::uint64_t map_task(int task_id) { return 10'000 + static_cast<std::uint64_t>(task_id); }
inline std::uint64_t reduce_task(int task_id) { return 20'000 + static_cast<std::uint64_t>(task_id); }
/// The DataNode / shuffle-server daemon of a VM (serves remote reads).
inline std::uint64_t server(int vm) { return 30'000 + static_cast<std::uint64_t>(vm); }
}  // namespace ctx

}  // namespace iosim::mapred
