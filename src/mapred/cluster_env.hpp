// iosim: the environment a job executes against — VMs with their vCPUs, the
// network, and the HDFS namespace. Built by the cluster module; consumed by
// Job / MapTask / ReduceTask.
#pragma once

#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "hdfs/hdfs.hpp"
#include "mapred/membership_iface.hpp"
#include "mapred/vcpu.hpp"
#include "net/flow_network.hpp"
#include "obs/attr.hpp"
#include "virt/domu.hpp"

namespace iosim::mapred {

/// One TaskTracker VM.
struct VmHandle {
  sim::Simulator* simr = nullptr;
  virt::DomU* vm = nullptr;
  VCpu* cpu = nullptr;
  int host = 0;       // physical host index (network endpoint)
  int global_id = 0;  // dense VM index across the cluster
};

struct ClusterEnv {
  sim::Simulator* simr = nullptr;
  net::FlowNetwork* net = nullptr;
  hdfs::Hdfs* dfs = nullptr;
  /// Fault injector, or null when the cluster runs fault-free.
  fault::FaultInjector* faults = nullptr;
  /// Membership service, or null (fault-free clusters build none).
  MembershipIface* members = nullptr;
  std::vector<VmHandle> vms;

  int n_vms() const { return static_cast<int>(vms.size()); }
  /// Whether VM `vm` is currently up (always true without fault injection).
  bool vm_alive(int vm) const { return faults == nullptr || !faults->vm_down(vm); }
  /// Whether the scheduler may place new tasks on `vm`: up, not declared
  /// dead, not blacklisted. Data-plane reads keep using vm_alive — a
  /// blacklisted DataNode still serves its replicas.
  bool schedulable(int vm) const {
    return vm_alive(vm) && (members == nullptr || members->schedulable(vm));
  }
};

/// Guest-level context-id scheme: every task / service gets a distinct
/// elevator context inside its VM.
///
/// Multi-tenancy: concurrent jobs must not collide in ctx space — the CFQ
/// elevator keys per-process queues (and its think-time EWMA) by ctx, so a
/// reused id would silently splice two jobs' I/O into one scheduling
/// context. Each stream-admitted job therefore offsets its task ctxs by a
/// private `base` = job_window(job_id); ids below kJobWindowBase stay the
/// shared/legacy namespace (single-job runs, chains, and the per-VM server
/// daemons, which genuinely are shared services).
namespace ctx {
/// First ctx id of the per-job windows; everything below is shared.
inline constexpr std::uint64_t kJobWindowBase = 1'000'000;
inline constexpr std::uint64_t kJobWindowSize = 1'000'000;
/// The private ctx window of stream job `job_id` ([window, window + size)).
inline std::uint64_t job_window(int job_id) {
  return kJobWindowBase * (static_cast<std::uint64_t>(job_id) + 1);
}
inline std::uint64_t map_task(int task_id, std::uint64_t base = 0) {
  return base + 10'000 + static_cast<std::uint64_t>(task_id);
}
inline std::uint64_t reduce_task(int task_id, std::uint64_t base = 0) {
  return base + 20'000 + static_cast<std::uint64_t>(task_id);
}
/// The DataNode / shuffle-server daemon of a VM (serves remote reads).
/// Deliberately never offset: the daemon is a VM-level service shared by
/// every job reading from that VM.
inline std::uint64_t server(int vm) { return 30'000 + static_cast<std::uint64_t>(vm); }

// The attribution layer recovers the job id from a bio ctx with its own copy
// of the window width (obs/ sits below mapred/ and cannot include us).
static_assert(obs::kJobCtxWindow == kJobWindowBase,
              "obs::kJobCtxWindow must mirror ctx::kJobWindowBase");
}  // namespace ctx

}  // namespace iosim::mapred
