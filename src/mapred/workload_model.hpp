// iosim: per-application cost model.
//
// The paper classifies MapReduce applications by their disk footprint:
// "heavy" (big map output AND big reduce output — stream sort), "moderate"
// (big map output only — wordcount without combiner) and "light" (neither —
// default wordcount). These few ratios plus CPU costs per byte are all that
// distinguishes the three benchmarks.
#pragma once

#include <cstdint>
#include <string>

namespace iosim::mapred {

struct WorkloadModel {
  std::string name = "job";

  /// Map output bytes per map input byte. Paper: wordcount w/o combiner
  /// emits ~1.7x its input; sort 1.0; wordcount with combiner a few percent.
  double map_output_ratio = 1.0;

  /// Job output bytes per shuffled byte (reduce side). Sort rewrites
  /// everything (1.0); wordcount reduces to counts (small).
  double reduce_output_ratio = 1.0;

  /// CPU cost of the map function per input byte (ns/byte). Wordcount
  /// tokenizes and counts (expensive); sort's map is identity (cheap).
  double map_cpu_ns_per_byte = 8.0;

  /// CPU cost of sorting/combining a spill per buffered byte.
  double sort_cpu_ns_per_byte = 4.0;

  /// CPU cost of merge + reduce function per shuffled byte.
  double reduce_cpu_ns_per_byte = 6.0;

  /// Whether a combiner collapses the in-memory map output before spilling
  /// (affects only bookkeeping; the collapse itself is map_output_ratio).
  bool combiner = false;
};

}  // namespace iosim::mapred
