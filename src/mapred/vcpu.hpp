// iosim: per-VM vCPU with processor sharing.
//
// Each DomU in the paper's setup has one VCPU pinned to its own physical
// core, so there is no cross-VM CPU contention — but the two map/reduce
// tasks *inside* a VM share that single vCPU. Bursts submitted here receive
// an equal share of the processor (fluid approximation of the guest kernel
// scheduler), recomputed whenever a burst starts or finishes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/simulator.hpp"

namespace iosim::mapred {

using sim::Time;

class VCpu {
 public:
  explicit VCpu(sim::Simulator& simr) : simr_(simr), last_update_(simr.now()) {}
  VCpu(const VCpu&) = delete;
  VCpu& operator=(const VCpu&) = delete;

  /// Run a burst needing `cpu_time` of dedicated-CPU work; `done` fires when
  /// it has accumulated that much share.
  void run(Time cpu_time, std::function<void()> done);

  /// Bursts currently sharing the vCPU.
  std::size_t active() const { return bursts_.size(); }

  /// Total CPU time consumed so far (for utilization accounting).
  Time consumed() const { return consumed_; }

 private:
  struct Burst {
    double remaining_ns;
    std::function<void()> done;
  };

  void advance(Time now);
  void reschedule();

  sim::Simulator& simr_;
  Time last_update_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Burst> bursts_;
  sim::EventId ev_ = sim::kInvalidEvent;
  Time consumed_;
};

}  // namespace iosim::mapred
