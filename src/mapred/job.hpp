// iosim: the job — JobTracker scheduling, task lifecycle, progress and
// phase events.
//
// One Job instance runs one MapReduce application over a ClusterEnv. It
// lays out the input in HDFS, assigns map tasks with locality preference as
// slots free up (producing the "waves" the paper's Table II is about),
// launches reducers after the slow-start threshold, and publishes the
// events the meta-scheduler's phase detector consumes: first-map-done,
// all-maps-done (Ph1→Ph2 boundary), shuffle-done (Ph2→Ph3 boundary) and
// job-done.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mapred/cluster_env.hpp"
#include "mapred/job_conf.hpp"
#include "mapred/job_stats.hpp"
#include "mapred/map_task.hpp"
#include "mapred/reduce_task.hpp"
#include "sim/random.hpp"

namespace iosim::mapred {

class Job {
 public:
  Job(ClusterEnv& env, JobConf conf, std::uint64_t seed);
  ~Job();
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Lay out input and start scheduling. The caller then drives the
  /// simulator; `on_done` fires when the last reducer commits.
  void run();

  const JobConf& conf() const { return conf_; }
  const JobStats& stats() const { return stats_; }
  ClusterEnv& env() { return env_; }
  bool done() const { return done_; }

  // Phase / lifecycle observers (set before run()).
  std::function<void(Time)> on_first_map_done;
  std::function<void(Time)> on_maps_done;
  std::function<void(Time)> on_shuffle_done;
  std::function<void(Time)> on_done;

  /// Hadoop-style job progress in [0,1].
  double progress() const;

 private:
  friend class MapTask;
  friend class ReduceTask;

  void try_assign_maps();
  void launch_reducers_if_ready();
  void map_finished(MapTask& task, MapOutput out);
  void reducer_shuffle_finished(ReduceTask& task);
  void reduce_finished(ReduceTask& task);
  void update_progress();

  // Accessors used by tasks.
  sim::Simulator& simr() { return *env_.simr; }
  const VmHandle& vm(int i) const { return env_.vms[static_cast<std::size_t>(i)]; }

  ClusterEnv& env_;
  JobConf conf_;
  sim::Rng rng_;

  std::vector<hdfs::DfsBlock> blocks_;
  std::vector<std::unique_ptr<MapTask>> maps_;
  std::vector<std::unique_ptr<ReduceTask>> reduces_;

  std::vector<int> pending_maps_;      // map ids not yet assigned
  std::vector<int> free_map_slots_;    // per VM
  std::vector<int> free_reduce_slots_; // per VM
  int next_reduce_to_place_ = 0;

  std::vector<MapOutput> completed_outputs_;
  int maps_done_ = 0;
  int reducers_shuffle_done_ = 0;
  int reduces_done_ = 0;
  bool reducers_launched_ = false;
  bool done_ = false;

  JobStats stats_;
  double next_milestone_ = 0.05;
};

}  // namespace iosim::mapred
