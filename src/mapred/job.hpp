// iosim: the job — JobTracker scheduling, task lifecycle, progress and
// phase events.
//
// One Job instance runs one MapReduce application over a ClusterEnv. It
// lays out the input in HDFS, assigns map tasks with locality preference as
// slots free up (producing the "waves" the paper's Table II is about),
// launches reducers after the slow-start threshold, and publishes the
// events the meta-scheduler's phase detector consumes: first-map-done,
// all-maps-done (Ph1→Ph2 boundary), shuffle-done (Ph2→Ph3 boundary) and
// job-done.
//
// Failure handling (Hadoop 0.19 semantics, engaged only when the cluster
// injects faults — a healthy run never touches these paths):
//   * a failed task attempt is retried with capped exponential backoff, up
//     to max_task_attempts; exhausting attempts aborts the job with a
//     diagnostic (failed() / failure()),
//   * map input reads fail over across HDFS replicas; the job aborts only
//     when every replica of a block is on a dead VM,
//   * VM outages kill the attempts placed on the VM (they are retried
//     elsewhere) and mask the VM from the scheduler until it returns,
//   * optional speculative execution re-runs straggling maps on a second
//     VM; the first copy to finish wins and the loser is cancelled.
// Cancelled/failed attempts are parked in a graveyard so callbacks still in
// flight observe the `cancelled` flag instead of a dangling pointer.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mapred/cluster_env.hpp"
#include "mapred/job_conf.hpp"
#include "mapred/job_stats.hpp"
#include "mapred/map_task.hpp"
#include "mapred/reduce_task.hpp"
#include "mapred/slot_arbiter.hpp"
#include "sim/random.hpp"

namespace iosim::mapred {

class Job {
 public:
  Job(ClusterEnv& env, JobConf conf, std::uint64_t seed);
  ~Job();
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Multi-tenant identity, set before run(). `job_id` keys auditor records
  /// and arbiter holdings; `ctx_base` offsets every task's elevator context
  /// (see mapred::ctx::job_window). The defaults (0, 0) are the single-job
  /// legacy identity — behavior and traces are byte-identical to builds
  /// that predate tenancy.
  void set_identity(int job_id, std::uint64_t ctx_base) {
    job_id_ = job_id;
    ctx_base_ = ctx_base;
  }
  int job_id() const { return job_id_; }
  std::uint64_t ctx_base() const { return ctx_base_; }

  /// Route slot accounting through a shared arbiter (multi-job streams).
  /// Null (default) = the job owns its slots outright. Set before run().
  void set_arbiter(SlotArbiter* a) { arbiter_ = a; }

  /// Lay out input and start scheduling. The caller then drives the
  /// simulator; `on_done` fires when the last reducer commits.
  void run();

  /// Re-scan for assignable work after cluster-wide slot supply or policy
  /// quota changed (another job released slots / finished). Only meaningful
  /// under an arbiter; a no-op once the job is done or failed.
  void kick();

  /// Unassigned demand, for policy share computations: map tasks waiting
  /// for a slot, and launched-but-unstarted reducers (0 before slow-start).
  int pending_map_count() const { return static_cast<int>(pending_maps_.size()); }
  int queued_reduce_count() const;

  const JobConf& conf() const { return conf_; }
  const JobStats& stats() const { return stats_; }
  ClusterEnv& env() { return env_; }
  bool done() const { return done_; }
  /// Whether the job aborted; the diagnostic is in failure().
  bool failed() const { return failed_; }
  const std::string& failure() const { return failure_; }
  /// Whether the abort was caused by dead hardware (input replicas all on
  /// dead VMs, or the final attempt died with its VM) rather than by the
  /// task itself — the distinction admission control needs: hardware-killed
  /// jobs are worth re-admitting, poison jobs are not.
  bool failed_on_dead_vm() const { return failed_on_dead_vm_; }

  // Phase / lifecycle observers (set before run()).
  std::function<void(Time)> on_first_map_done;
  std::function<void(Time)> on_maps_done;
  std::function<void(Time)> on_shuffle_done;
  std::function<void(Time)> on_done;
  std::function<void(Time, const std::string&)> on_failed;

  /// Hadoop-style job progress in [0,1].
  double progress() const;

 private:
  friend class MapTask;
  friend class ReduceTask;

  // Slot accounting seam: private per-VM vectors when no arbiter is
  // installed (the legacy fast path, byte-identical), the shared arbiter
  // otherwise.
  bool map_slot_free(int v) const;
  void take_map_slot(int v);
  void give_map_slot(int v);
  bool reduce_slot_free(int v) const;
  void take_reduce_slot(int v);
  void give_reduce_slot(int v);

  void try_assign_maps();
  void launch_reducers_if_ready();
  void pump_queued_reducers();
  /// `preferred` if schedulable, else the next schedulable VM by rotation,
  /// else -1 (no placement possible right now).
  int resolve_reduce_vm(int preferred) const;
  void start_reducer(ReduceTask* task);
  void map_finished(MapTask& task, MapOutput out);
  void map_attempt_failed(MapTask& task);
  void map_input_lost(MapTask& task);
  /// A committed map's output became unreachable (its TaskTracker was
  /// declared dead): roll the commit back and re-execute the map. Called by
  /// reducers that hit a declared-dead source and by the membership
  /// listener. Idempotent per outstanding loss.
  void map_output_lost(int map_id);
  void reduce_finished(ReduceTask& task);
  void reduce_attempt_failed(ReduceTask& task);
  void reducer_shuffle_finished(ReduceTask& task);
  void update_progress();

  // Failure-path plumbing.
  Time backoff_delay(int failures) const;
  void retire_map_attempt(MapTask& task);
  void abort_job(std::string reason);
  void handle_vm_down(int vm);
  void handle_vm_up(int vm);
  void handle_vm_declared_dead(int vm);
  void unregister_blocks();
  void schedule_speculation_scan();
  void speculation_scan();
  void launch_speculative_map(int map_id);
  bool map_pending(int map_id) const;
  void note_hdfs_failover(int map_id, int from_vm, int to_vm);
  void note_fetch_retry(int reduce_id, int map_id);
  void note_replica_write_lost(int reduce_id);

  // Accessors used by tasks.
  sim::Simulator& simr() { return *env_.simr; }
  const VmHandle& vm(int i) const { return env_.vms[static_cast<std::size_t>(i)]; }

  ClusterEnv& env_;
  JobConf conf_;
  sim::Rng rng_;
  int job_id_ = 0;
  std::uint64_t ctx_base_ = 0;
  SlotArbiter* arbiter_ = nullptr;

  std::vector<hdfs::DfsBlock> blocks_;
  std::vector<std::unique_ptr<MapTask>> maps_;        // current primary attempt
  std::vector<std::unique_ptr<MapTask>> spec_maps_;   // speculative copy, if any
  std::vector<std::unique_ptr<ReduceTask>> reduces_;  // current attempt per id

  // Graveyard: cancelled/failed attempts stay alive here until the job is
  // destroyed, so completions still in the event queue find a live object.
  std::vector<std::unique_ptr<MapTask>> retired_maps_;
  std::vector<std::unique_ptr<ReduceTask>> retired_reduces_;

  std::vector<int> pending_maps_;      // map ids not yet assigned
  std::vector<int> free_map_slots_;    // per VM
  std::vector<int> free_reduce_slots_; // per VM
  int next_reduce_to_place_ = 0;

  std::vector<char> map_done_flags_;   // per map id: committed output exists
  std::vector<int> map_running_;       // per map id: live attempt count (0..2)
  std::vector<int> map_failures_;      // per map id: failed (non-spec) attempts
  std::vector<int> reduce_failures_;   // per reduce id
  std::vector<char> reduce_shuffle_counted_;  // per reduce id
  // Per reduce id: a slot is taken and start_reducer is in flight. Guards
  // the assign_latency window where started() is still false, so the
  // relaunch scans cannot hand the same reducer a second slot.
  std::vector<char> reduce_assigned_;

  std::vector<MapOutput> completed_outputs_;
  int maps_done_ = 0;
  int reducers_shuffle_done_ = 0;
  int reduces_done_ = 0;
  bool reducers_launched_ = false;
  bool done_ = false;
  bool failed_ = false;
  bool failed_on_dead_vm_ = false;
  // Milestone latches: a map re-execution (output lost with its dead
  // TaskTracker) can take maps_done_ below the thresholds again; the phase
  // events must not re-fire when it recovers.
  bool first_map_done_fired_ = false;
  bool maps_done_fired_ = false;
  bool blocks_registered_ = false;
  std::string failure_;
  Time map_dur_sum_ = Time::zero();    // total runtime of finished maps

  JobStats stats_;
  double next_milestone_ = 0.05;
};

}  // namespace iosim::mapred
