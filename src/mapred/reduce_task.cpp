#include "mapred/reduce_task.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "mapred/job.hpp"
#include "mapred/merge_op.hpp"
#include "trace/trace.hpp"
#include "virt/io_stream.hpp"

namespace iosim::mapred {

namespace {
sim::Time cpu_cost(double ns_per_byte, std::int64_t bytes) {
  return sim::Time::from_ns(
      static_cast<std::int64_t>(ns_per_byte * static_cast<double>(bytes)));
}
}  // namespace

ReduceTask::ReduceTask(Job& job, int task_id, int vm, int attempt)
    : job_(job), task_id_(task_id), vm_(vm), attempt_(attempt),
      io_ctx_(ctx::reduce_task(task_id, job.ctx_base())) {}

void ReduceTask::start() {
  if (cancelled_) return;
  started_ = true;
  t_start_ = job_.simr().now();
  pump_fetches();
  maybe_shuffle_done();  // degenerate: zero maps
}

void ReduceTask::map_output_ready(const MapOutput& mo) {
  if (cancelled_) return;
  if (has_fetched(mo.map_id)) return;  // re-advertised re-execution output
  fetch_queue_.push_back(mo);
  if (started_) pump_fetches();
}

void ReduceTask::pump_fetches() {
  const JobConf& c = job_.conf();
  while (active_fetches_ < c.shuffle_parallel && !fetch_queue_.empty()) {
    const MapOutput mo = fetch_queue_.front();
    fetch_queue_.pop_front();
    // A stale advertisement (the original output before a map re-executed)
    // can coexist in the queue with the fresh one; pull each map once.
    if (has_fetched(mo.map_id)) continue;
    ++active_fetches_;
    fetch(mo);
  }
}

void ReduceTask::fetch(const MapOutput& mo) {
  const JobConf& c = job_.conf();
  const int R = c.n_reduces(job_.env().n_vms());
  // This reducer's partition: a contiguous slice of the map output file.
  const std::int64_t part = mo.bytes / R;
  if (part <= 0) {
    // Nothing to move; account the fetch as instantaneous bookkeeping.
    job_.simr().after(sim::Time::zero(), [this, mo] {
      if (cancelled_) return;
      fetch_arrived(mo.map_id, 0);
    });
    return;
  }
  if (!job_.env().vm_alive(mo.vm)) {
    auto* members = job_.env().members;
    if (members != nullptr && members->declared_dead(mo.vm)) {
      // The source TaskTracker is gone for good: retrying against it would
      // burn the fetch budget for nothing. Report the output lost — the job
      // re-executes the map and advertises fresh output, which arrives via
      // map_output_ready like any other commit.
      job_.simr().after(sim::Time::zero(), [this, mo] {
        if (cancelled_) return;
        --active_fetches_;
        job_.map_output_lost(mo.map_id);
        pump_fetches();
      });
      return;
    }
    // Down but not declared dead: a transient refusal, retry with backoff.
    job_.simr().after(sim::Time::zero(), [this, mo] {
      if (cancelled_) return;
      fetch_failed(mo);
    });
    return;
  }
  const disk::Lba off =
      (mo.bytes * task_id_ / R) / disk::kSectorBytes;

  const VmHandle& srcvm = job_.vm(mo.vm);
  const VmHandle& me = job_.vm(vm_);

  virt::IoStreamParams sp;
  sp.unit_sectors = c.io_unit_bytes / disk::kSectorBytes;
  sp.window = c.read_window;
  sp.cancelled = [this] { return cancelled_; };
  // DataNode-side read of the partition, then the network hop (loopback for
  // a same-host source), then arrival processing.
  virt::IoStream::run(*srcvm.vm, ctx::server(mo.vm), mo.vlba + off, part,
                      iosched::Dir::kRead, /*sync=*/true, sp,
                      [this, part, mo, &srcvm, &me](sim::Time, iosched::IoStatus st) {
                        if (cancelled_) return;
                        if (st != iosched::IoStatus::kOk) {
                          fetch_failed(mo);
                          return;
                        }
                        job_.env().net->start_flow(
                            srcvm.host, me.host, part,
                            [this, part, mo](sim::Time) {
                              if (cancelled_) return;
                              fetch_arrived(mo.map_id, part);
                            });
                      });
}

void ReduceTask::fetch_arrived(int map_id, std::int64_t bytes) {
  const JobConf& c = job_.conf();
  if (map_fetched_.size() <= static_cast<std::size_t>(map_id)) {
    map_fetched_.resize(static_cast<std::size_t>(map_id) + 1, 0);
  }
  map_fetched_[static_cast<std::size_t>(map_id)] = 1;
  received_ += bytes;
  mem_used_ += bytes;
  job_.stats_.shuffle_bytes += bytes;
  ++maps_fetched_;
  --active_fetches_;
  if (mem_used_ >= c.shuffle_mem_bytes) flush_memory();
  pump_fetches();
  maybe_shuffle_done();
  job_.update_progress();
}

void ReduceTask::fetch_failed(const MapOutput& mo) {
  --active_fetches_;
  if (fetch_fail_counts_.size() <= static_cast<std::size_t>(mo.map_id)) {
    fetch_fail_counts_.resize(static_cast<std::size_t>(mo.map_id) + 1, 0);
  }
  const int fails = ++fetch_fail_counts_[static_cast<std::size_t>(mo.map_id)];
  job_.note_fetch_retry(task_id_, mo.map_id);
  if (fails > job_.conf().max_fetch_retries) {
    fail_attempt();
    return;
  }
  // Hadoop's copier backs off per failed host; model it per map output.
  job_.simr().after(job_.backoff_delay(fails), [this, mo] {
    if (cancelled_) return;
    fetch_queue_.push_back(mo);
    pump_fetches();
  });
  pump_fetches();  // keep the other copier threads busy meanwhile
}

void ReduceTask::flush_memory() {
  // In-memory merge: the buffered segments are merged and written out as a
  // single on-disk segment (async stream).
  const JobConf& c = job_.conf();
  const VmHandle& me = job_.vm(vm_);
  const std::int64_t bytes = mem_used_;
  mem_used_ = 0;
  ++flush_inflight_;
  me.cpu->run(cpu_cost(c.workload.sort_cpu_ns_per_byte, bytes), [this, bytes, &me, &c] {
    if (cancelled_) return;
    const disk::Lba at =
        me.vm->alloc(virt::DiskZone::kScratch, bytes / disk::kSectorBytes + 1);
    virt::IoStreamParams sp;
    sp.unit_sectors = c.io_unit_bytes / disk::kSectorBytes;
    sp.window = c.write_window;
    sp.cancelled = [this] { return cancelled_; };
    virt::IoStream::run(*me.vm, io_ctx_, at, bytes, iosched::Dir::kWrite,
                        /*sync=*/false, sp, [this, at, bytes](sim::Time, iosched::IoStatus st) {
                          if (cancelled_) return;
                          if (st != iosched::IoStatus::kOk) {
                            fail_attempt();  // lost shuffle segment on disk
                            return;
                          }
                          segments_.push_back({at, bytes});
                          --flush_inflight_;
                          maybe_shuffle_done();
                        });
  });
}

void ReduceTask::maybe_shuffle_done() {
  if (shuffle_complete_) return;
  if (maps_fetched_ < job_.stats().maps_total) return;
  if (active_fetches_ > 0 || flush_inflight_ > 0) return;
  shuffle_complete_ = true;
  t_shuffle_done_ = job_.simr().now();
  if (auto* tr = trace::tracer()) {
    tr->complete(tr->track("tasks/vm" + std::to_string(vm_)), tr->ids.shuffle_span,
                 tr->ids.cat_mapred, t_start_, t_shuffle_done_, tr->ids.task,
                 task_id_, tr->ids.bytes, received_);
  }
  job_.reducer_shuffle_finished(*this);
  start_merge_reduce();
}

void ReduceTask::start_merge_reduce() {
  const JobConf& c = job_.conf();
  const VmHandle& me = job_.vm(vm_);

  merge_total_ = received_;
  std::int64_t disk_in = 0;
  for (const auto& s : segments_) disk_in += s.bytes;
  const std::int64_t mem_in = received_ - disk_in;
  const auto out_total = static_cast<std::int64_t>(
      c.workload.reduce_output_ratio * static_cast<double>(received_));

  // Three concurrent parts: (1) merge+reduce over on-disk segments with the
  // local output write, (2) CPU for the in-memory remainder, (3) the remote
  // replica of the output (flow + remote DataNode write), which Hadoop
  // pipelines with the local write.
  parts_left_ = 3;

  // Part 1: on-disk merge + local output write.
  if (disk_in > 0) {
    MergeOpParams mp;
    for (const auto& s : segments_) mp.inputs.push_back({s.vlba, s.bytes});
    const std::int64_t out_sectors = out_total / disk::kSectorBytes + 1;
    mp.out_vlba = me.vm->alloc(virt::DiskZone::kOutput, out_sectors);
    mp.write_ratio = static_cast<double>(out_total) / static_cast<double>(disk_in);
    mp.cpu_ns_per_byte = c.workload.reduce_cpu_ns_per_byte;
    mp.io_unit_bytes = c.io_unit_bytes;
    mp.window = c.read_window;
    mp.cancelled = [this] { return cancelled_; };
    mp.on_progress = [this](std::int64_t done, std::int64_t) {
      if (cancelled_) return;
      merged_ = done;
      job_.update_progress();
    };
    MergeOp::run(me, io_ctx_, std::move(mp), [this](sim::Time, iosched::IoStatus st) {
      if (cancelled_) return;
      if (st != iosched::IoStatus::kOk) {
        fail_attempt();
        return;
      }
      part_done();
    });
  } else {
    merged_ = 0;
    job_.simr().after(sim::Time::zero(), [this] {
      if (cancelled_) return;
      part_done();
    });
  }

  // Part 2: reduce function over the in-memory remainder.
  if (mem_in > 0) {
    me.cpu->run(cpu_cost(c.workload.reduce_cpu_ns_per_byte, mem_in),
                [this] {
                  if (cancelled_) return;
                  part_done();
                });
  } else {
    job_.simr().after(sim::Time::zero(), [this] {
      if (cancelled_) return;
      part_done();
    });
  }

  // Part 3: output replication (HDFS second replica). A dead or failing
  // replica target degrades to a local-only write (pipeline recovery) —
  // the job completes; durability is what suffers.
  auto& env = job_.env();
  const int replica_vm =
      out_total > 0 && env.n_vms() > 1
          ? env.dfs->pick_remote_replica_vm(
                vm_, [&env](int v) { return env.vm_alive(v); })
          : -1;
  if (replica_vm >= 0) {
    const VmHandle& rv = job_.vm(replica_vm);
    job_.env().net->start_flow(
        me.host, rv.host, out_total, [this, &rv, out_total, &c, replica_vm](sim::Time) {
          if (cancelled_) return;
          const disk::Lba at = rv.vm->alloc(virt::DiskZone::kData,
                                            out_total / disk::kSectorBytes + 1);
          virt::IoStreamParams sp;
          sp.unit_sectors = c.io_unit_bytes / disk::kSectorBytes;
          sp.window = c.write_window;
          sp.cancelled = [this] { return cancelled_; };
          virt::IoStream::run(*rv.vm, ctx::server(replica_vm), at, out_total,
                              iosched::Dir::kWrite, /*sync=*/false, sp,
                              [this](sim::Time, iosched::IoStatus st) {
                                if (cancelled_) return;
                                if (st != iosched::IoStatus::kOk) {
                                  job_.note_replica_write_lost(task_id_);
                                }
                                part_done();
                              });
        });
  } else {
    if (out_total > 0 && env.n_vms() > 1) job_.note_replica_write_lost(task_id_);
    job_.simr().after(sim::Time::zero(), [this] {
      if (cancelled_) return;
      part_done();
    });
  }

  job_.stats_.output_bytes += out_total;
}

void ReduceTask::part_done() {
  assert(parts_left_ > 0);
  if (--parts_left_ == 0) {
    finished_ = true;
    merged_ = merge_total_;
    if (auto* tr = trace::tracer()) {
      tr->complete(tr->track("tasks/vm" + std::to_string(vm_)), tr->ids.reduce_span,
                   tr->ids.cat_mapred, t_shuffle_done_, job_.simr().now(),
                   tr->ids.task, task_id_, tr->ids.bytes, merge_total_);
    }
    job_.update_progress();
    job_.reduce_finished(*this);
  }
}

void ReduceTask::fail_attempt() {
  if (cancelled_) return;
  cancel();
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.task_fail, tr->ids.cat_mapred,
                job_.simr().now(), tr->ids.task, 100'000 + task_id_,
                tr->ids.attempt, attempt_);
  }
  job_.reduce_attempt_failed(*this);
}

double ReduceTask::progress() const {
  const int total_maps = job_.stats().maps_total;
  const double shuffle_frac =
      total_maps > 0 ? static_cast<double>(maps_fetched_) / total_maps : 1.0;
  double process_frac;
  if (finished_) {
    process_frac = 1.0;
  } else if (merge_total_ > 0) {
    process_frac = static_cast<double>(merged_) / static_cast<double>(merge_total_);
  } else {
    process_frac = 0.0;
  }
  return shuffle_frac / 3.0 + 2.0 * process_frac / 3.0;
}

}  // namespace iosim::mapred
