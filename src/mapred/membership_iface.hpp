// iosim: the JobTracker-visible face of cluster membership.
//
// The failure detector, blacklist, and re-replication machinery live in
// src/membership/ (above mapred/ in the dependency order, because the
// repair pipeline drives VM I/O streams). The scheduler only needs a narrow
// view — "may I place a task here?", "is this TaskTracker declared dead?" —
// so that view is an abstract interface defined down here and wired through
// ClusterEnv::members by the cluster builder. A null pointer means no
// membership service (fault-free runs), and every consumer keeps its legacy
// fast path.
#pragma once

#include <functional>
#include <vector>

#include "hdfs/hdfs.hpp"
#include "sim/time.hpp"

namespace iosim::mapred {

class MembershipIface {
 public:
  virtual ~MembershipIface() = default;

  /// Whether new tasks may be placed on `vm` (not declared dead, not
  /// blacklisted). A merely-suspected VM stays schedulable — Hadoop keeps
  /// assigning until the timeout expires.
  virtual bool schedulable(int vm) const = 0;

  /// Whether the failure detector has declared `vm` dead (heartbeat timeout
  /// expired). Distinct from a transient outage the detector has not
  /// confirmed yet.
  virtual bool declared_dead(int vm) const = 0;

  /// Blacklist strike feed: a task attempt failed while placed on `vm`.
  virtual void note_task_failure(int vm) = 0;

  /// Register a job's HDFS block table for NameNode-style re-replication
  /// scans. The vector must stay alive (and at a stable address) until
  /// unregistered; repairs mutate replica entries in place.
  virtual void register_job_blocks(int job_id,
                                   std::vector<hdfs::DfsBlock>* blocks) = 0;
  virtual void unregister_job_blocks(int job_id) = 0;

  /// Listeners, fired from simulator events. Register before the run.
  using VmEvent = std::function<void(int vm, sim::Time now)>;
  /// The detector declared a VM dead (fires once per death).
  virtual void on_declared_dead(VmEvent cb) = 0;
  /// A VM became schedulable again (rejoined after death, or a blacklist
  /// probe succeeded) — fresh capacity, schedulers should rescan.
  virtual void on_schedulable_again(VmEvent cb) = 0;
};

}  // namespace iosim::mapred
