#include "mapred/vcpu.hpp"

#include <cassert>
#include <limits>
#include <vector>

namespace iosim::mapred {

namespace {
constexpr double kEpsilonNs = 1.0;
}

void VCpu::run(Time cpu_time, std::function<void()> done) {
  advance(simr_.now());
  if (cpu_time <= Time::zero()) {
    // Zero-cost burst: complete on a fresh event to keep callback ordering
    // consistent with real bursts.
    simr_.after(Time::zero(), std::move(done));
    reschedule();
    return;
  }
  bursts_.emplace(next_id_++,
                  Burst{static_cast<double>(cpu_time.ns()), std::move(done)});
  reschedule();
}

void VCpu::advance(Time now) {
  const double dt_ns = static_cast<double>((now - last_update_).ns());
  last_update_ = now;
  if (dt_ns <= 0.0 || bursts_.empty()) return;
  const double share = dt_ns / static_cast<double>(bursts_.size());
  for (auto& [id, b] : bursts_) {
    (void)id;
    b.remaining_ns -= share;
    if (b.remaining_ns < 0.0) b.remaining_ns = 0.0;
  }
  consumed_ += Time::from_ns(static_cast<std::int64_t>(dt_ns));
}

void VCpu::reschedule() {
  if (ev_ != sim::kInvalidEvent) {
    simr_.cancel(ev_);
    ev_ = sim::kInvalidEvent;
  }
  if (bursts_.empty()) return;

  double soonest_ns = std::numeric_limits<double>::infinity();
  for (const auto& [id, b] : bursts_) {
    (void)id;
    const double t = std::max(0.0, b.remaining_ns - kEpsilonNs) *
                     static_cast<double>(bursts_.size());
    soonest_ns = std::min(soonest_ns, t);
  }
  ev_ = simr_.after(Time::from_ns(static_cast<std::int64_t>(soonest_ns) + 1), [this] {
    ev_ = sim::kInvalidEvent;
    advance(simr_.now());
    std::vector<std::function<void()>> done;
    for (auto it = bursts_.begin(); it != bursts_.end();) {
      if (it->second.remaining_ns <= kEpsilonNs) {
        done.push_back(std::move(it->second.done));
        it = bursts_.erase(it);
      } else {
        ++it;
      }
    }
    reschedule();
    for (auto& fn : done) fn();
  });
}

}  // namespace iosim::mapred
