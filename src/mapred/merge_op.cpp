#include "mapred/merge_op.hpp"

#include <cassert>

#include "disk/disk_model.hpp"

namespace iosim::mapred {

void MergeOp::run(const VmHandle& vm, std::uint64_t io_ctx, MergeOpParams params,
                  iosched::CompletionFn on_done) {
  auto self = std::shared_ptr<MergeOp>(
      new MergeOp(vm, io_ctx, std::move(params), std::move(on_done)));
  if (self->total_in_ == 0) {
    // Degenerate: nothing to merge; complete asynchronously at "now".
    self->done_fired_ = true;
    auto cb = std::move(self->on_done_);
    vm.simr->after(sim::Time::zero(), [cb = std::move(cb), self, simr = vm.simr] {
      if (cb) cb(simr->now(), iosched::IoStatus::kOk);
    });
    return;
  }
  self->pump(self);
}

MergeOp::MergeOp(const VmHandle& vm, std::uint64_t io_ctx, MergeOpParams params,
                 iosched::CompletionFn on_done)
    : vm_(vm), io_ctx_(io_ctx), p_(std::move(params)), on_done_(std::move(on_done)) {
  cursors_.reserve(p_.inputs.size());
  for (const auto& in : p_.inputs) {
    if (in.bytes <= 0) continue;
    cursors_.push_back({in.vlba, in.bytes});
    total_in_ += in.bytes;
  }
  out_next_ = p_.out_vlba;
}

void MergeOp::pump(std::shared_ptr<MergeOp> self) {
  if (p_.cancelled && p_.cancelled()) failed_ = true;
  while (!failed_ && inflight_ < p_.window && read_issued_ < total_in_) {
    // Pick the next non-empty input round-robin.
    std::size_t tries = 0;
    while (cursors_[rr_].remaining == 0 && tries < cursors_.size()) {
      rr_ = (rr_ + 1) % cursors_.size();
      ++tries;
    }
    Cursor& c = cursors_[rr_];
    if (c.remaining == 0) break;
    const std::int64_t unit = std::min<std::int64_t>(p_.io_unit_bytes, c.remaining);
    const auto sectors = (unit + disk::kSectorBytes - 1) / disk::kSectorBytes;
    const disk::Lba at = c.next;
    c.next += sectors;
    c.remaining -= unit;
    rr_ = (rr_ + 1) % cursors_.size();
    read_issued_ += unit;
    ++inflight_;
    vm_.vm->submit_io(io_ctx_, at, sectors, iosched::Dir::kRead, /*sync=*/true,
                      [this, self, unit](sim::Time t, iosched::IoStatus st) {
                        --inflight_;
                        if (st != iosched::IoStatus::kOk) {
                          failed_ = true;
                          maybe_finish(t);
                          return;
                        }
                        unit_read_done(self, unit, t);
                        pump(self);
                      });
  }
  // A cancel with nothing in flight would otherwise never report back.
  if (failed_) maybe_finish(vm_.simr->now());
}

void MergeOp::unit_read_done(std::shared_ptr<MergeOp> self, std::int64_t unit_bytes,
                             sim::Time) {
  read_done_ += unit_bytes;
  if (p_.on_progress) p_.on_progress(read_done_, total_in_);

  ++cpu_write_inflight_;
  const auto cpu = sim::Time::from_ns(
      static_cast<std::int64_t>(p_.cpu_ns_per_byte * static_cast<double>(unit_bytes)));
  vm_.cpu->run(cpu, [this, self, unit_bytes] {
    // Emit output for this unit (carry fractional bytes across units).
    write_pending_bytes_ +=
        static_cast<std::int64_t>(p_.write_ratio * static_cast<double>(unit_bytes));
    const std::int64_t out_unit = write_pending_bytes_;
    write_pending_bytes_ = 0;
    if (p_.cancelled && p_.cancelled()) failed_ = true;
    if (out_unit <= 0 || failed_) {
      --cpu_write_inflight_;
      maybe_finish(vm_.simr->now());
      return;
    }
    const auto sectors = (out_unit + disk::kSectorBytes - 1) / disk::kSectorBytes;
    const disk::Lba at = out_next_;
    out_next_ += sectors;
    vm_.vm->submit_io(io_ctx_, at, sectors, iosched::Dir::kWrite, /*sync=*/false,
                      [this, self](sim::Time t2, iosched::IoStatus st) {
                        --cpu_write_inflight_;
                        if (st != iosched::IoStatus::kOk) failed_ = true;
                        maybe_finish(t2);
                      });
  });
}

void MergeOp::maybe_finish(sim::Time t) {
  if (done_fired_) return;
  const bool drained = inflight_ == 0 && cpu_write_inflight_ == 0;
  if ((failed_ && drained) ||
      (read_done_ == total_in_ && drained)) {
    done_fired_ = true;
    if (on_done_) {
      on_done_(t, failed_ ? iosched::IoStatus::kError : iosched::IoStatus::kOk);
    }
  }
}

}  // namespace iosim::mapred
