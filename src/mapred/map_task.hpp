// iosim: a Hadoop map task.
//
// Lifecycle (Hadoop 0.19 semantics):
//   read a chunk of the input block (local HDFS replica when available,
//   remote DataNode read + network transfer otherwise)
//   -> run the map function on the vCPU
//   -> buffer the map output; when the io.sort buffer crosses the spill
//      threshold, sort (CPU) and spill to local disk asynchronously
//   -> at end of input: final spill, and if more than one spill file exists,
//      a k-way merge pass produces the single map output file reducers pull.
//
// The interleaving of sync sequential reads, CPU gaps and async spill
// writes is precisely the mixed I/O pattern the paper's Section III blames
// for every static scheduler pair being sub-optimal somewhere.
//
// Failure semantics: one MapTask object is one *attempt*. An input-read
// error first fails over to a surviving replica (DFSClient behavior); when
// no other replica is usable — or a spill/merge write fails — the attempt
// reports failure to the job, which owns retry/backoff/abort policy. A
// cancelled attempt (lost speculation race, VM outage, job abort) goes
// inert: every pending callback checks `cancelled_` and returns. The job
// keeps cancelled attempts alive in a graveyard so in-flight captures of
// `this` stay valid.
#pragma once

#include <cstdint>
#include <vector>

#include "hdfs/hdfs.hpp"
#include "mapred/cluster_env.hpp"
#include "sim/time.hpp"

namespace iosim::mapred {

class Job;

/// A completed map's output file, advertised to reducers.
struct MapOutput {
  int map_id = -1;
  int vm = -1;
  disk::Lba vlba = 0;
  std::int64_t bytes = 0;
};

class MapTask {
 public:
  MapTask(Job& job, int task_id, const hdfs::DfsBlock& block, int vm,
          int attempt = 1, bool speculative = false);

  void start();
  int task_id() const { return task_id_; }
  int vm() const { return vm_; }
  int attempt() const { return attempt_; }
  bool speculative() const { return speculative_; }
  bool running() const { return running_; }
  sim::Time t_start() const { return t_start_; }

  /// Go inert: all pending completions become no-ops. Idempotent.
  void cancel() { cancelled_ = true; running_ = false; }

  /// Fail this attempt (traces task_fail and reports to the job). Used
  /// internally on I/O errors and by the job when the hosting VM dies.
  void fail_attempt();

 private:
  struct SpillFile {
    disk::Lba vlba;
    std::int64_t bytes;
  };

  void read_next_chunk();
  void read_failed(std::int64_t chunk);
  void chunk_read(std::int64_t bytes);
  void chunk_computed(std::int64_t in_bytes);
  void queue_spill(std::int64_t bytes);
  void start_spill();
  void end_of_input();
  void maybe_finish();
  void finish(disk::Lba out_vlba, std::int64_t out_bytes);

  Job& job_;
  int task_id_;
  hdfs::DfsBlock block_;
  int vm_;
  int attempt_;
  bool speculative_;

  std::uint64_t io_ctx_;
  sim::Time t_start_ = sim::Time::zero();  // set when the task starts running
  bool local_ = true;
  hdfs::BlockReplica src_{};
  std::int64_t read_off_ = 0;   // bytes of input consumed so far
  int read_failovers_ = 0;      // failed reads this attempt (bounded)

  std::int64_t buffer_ = 0;     // un-spilled map output bytes
  std::int64_t spill_queue_ = 0;
  bool spill_running_ = false;
  bool input_done_ = false;
  bool running_ = false;
  bool cancelled_ = false;
  std::vector<SpillFile> spills_;
};

}  // namespace iosim::mapred
