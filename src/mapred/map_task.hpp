// iosim: a Hadoop map task.
//
// Lifecycle (Hadoop 0.19 semantics):
//   read a chunk of the input block (local HDFS replica when available,
//   remote DataNode read + network transfer otherwise)
//   -> run the map function on the vCPU
//   -> buffer the map output; when the io.sort buffer crosses the spill
//      threshold, sort (CPU) and spill to local disk asynchronously
//   -> at end of input: final spill, and if more than one spill file exists,
//      a k-way merge pass produces the single map output file reducers pull.
//
// The interleaving of sync sequential reads, CPU gaps and async spill
// writes is precisely the mixed I/O pattern the paper's Section III blames
// for every static scheduler pair being sub-optimal somewhere.
#pragma once

#include <cstdint>
#include <vector>

#include "hdfs/hdfs.hpp"
#include "mapred/cluster_env.hpp"
#include "sim/time.hpp"

namespace iosim::mapred {

class Job;

/// A completed map's output file, advertised to reducers.
struct MapOutput {
  int map_id = -1;
  int vm = -1;
  disk::Lba vlba = 0;
  std::int64_t bytes = 0;
};

class MapTask {
 public:
  MapTask(Job& job, int task_id, const hdfs::DfsBlock& block, int vm);

  void start();
  int task_id() const { return task_id_; }
  int vm() const { return vm_; }

 private:
  struct SpillFile {
    disk::Lba vlba;
    std::int64_t bytes;
  };

  void read_next_chunk();
  void chunk_read(std::int64_t bytes);
  void chunk_computed(std::int64_t in_bytes);
  void queue_spill(std::int64_t bytes);
  void start_spill();
  void end_of_input();
  void maybe_finish();
  void finish(disk::Lba out_vlba, std::int64_t out_bytes);

  Job& job_;
  int task_id_;
  hdfs::DfsBlock block_;
  int vm_;

  std::uint64_t io_ctx_;
  sim::Time t_start_ = sim::Time::zero();  // set when the task starts running
  bool local_ = true;
  hdfs::BlockReplica src_{};
  std::int64_t read_off_ = 0;   // bytes of input consumed so far

  std::int64_t buffer_ = 0;     // un-spilled map output bytes
  std::int64_t spill_queue_ = 0;
  bool spill_running_ = false;
  bool input_done_ = false;
  std::vector<SpillFile> spills_;
};

}  // namespace iosim::mapred
