// iosim: timings and counters collected from one job execution.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace iosim::mapred {

using sim::Time;

/// A (progress, time) milestone; progress uses the Hadoop formula
/// (map half + reduce half, the reduce half split evenly between shuffle,
/// merge and reduce).
struct Milestone {
  double progress = 0.0;
  Time t;
};

struct JobStats {
  Time t_start;
  Time t_first_map_done;
  Time t_maps_done;
  Time t_shuffle_done;   // last reducer finished fetching
  Time t_done;

  int maps_total = 0;
  int reduces_total = 0;

  std::int64_t map_input_bytes = 0;
  std::int64_t map_output_bytes = 0;
  std::int64_t shuffle_bytes = 0;
  std::int64_t output_bytes = 0;
  std::int64_t map_side_spill_bytes = 0;

  // Failure-path counters (all zero on a fault-free run).
  int map_attempts_failed = 0;
  int reduce_attempts_failed = 0;
  int maps_speculated = 0;       // speculative map copies launched
  int hdfs_failovers = 0;        // reads redirected to a surviving replica
  int fetch_retries = 0;         // shuffle fetches re-queued after a failure
  int replica_writes_lost = 0;   // output replicas dropped (pipeline failure)
  int map_outputs_lost = 0;      // committed maps re-executed (host declared dead)
  /// Set when the job aborted (task out of attempts / data unavailable);
  /// the diagnostic lives in Job::failure().
  bool failed = false;

  /// Progress milestones every 5% for the Fig. 4 sub-phase analysis.
  std::vector<Milestone> milestones;

  Time elapsed() const { return t_done - t_start; }
  /// Duration of the non-overlapped shuffle tail (paper Table II numerator).
  Time shuffle_tail() const {
    return t_shuffle_done > t_maps_done ? t_shuffle_done - t_maps_done : Time::zero();
  }
  /// "Percentage of non-concurrent shuffle" — shuffle tail relative to the
  /// whole job (see DESIGN.md experiment notes).
  double shuffle_tail_pct() const {
    return 100.0 * shuffle_tail().ratio(elapsed());
  }
};

}  // namespace iosim::mapred
