#include "mapred/job.hpp"

#include <algorithm>
#include <cassert>

#include "trace/trace.hpp"

namespace iosim::mapred {

namespace {
// `what` selects a pre-interned name from the *installed* tracer, which the
// call site cannot touch before the null check.
void job_instant(trace::Str trace::Tracer::CommonIds::* what, sim::Time t) {
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.*what, tr->ids.cat_mapred, t);
  }
}
}  // namespace

Job::Job(ClusterEnv& env, JobConf conf, std::uint64_t seed)
    : env_(env), conf_(std::move(conf)), rng_(seed) {}

Job::~Job() = default;

void Job::run() {
  const int n_vms = env_.n_vms();
  assert(n_vms > 0);
  const auto blocks_per_vm =
      static_cast<int>((conf_.input_bytes_per_vm + conf_.block_bytes - 1) / conf_.block_bytes);

  // Lay out the input in HDFS (allocations land in each VM's data zone).
  blocks_ = env_.dfs->create_input(
      blocks_per_vm, conf_.block_bytes, [this](int vm_id, disk::Lba sectors) {
        return env_.vms[static_cast<std::size_t>(vm_id)].vm->alloc(
            virt::DiskZone::kData, sectors);
      });

  stats_.t_start = simr().now();
  stats_.maps_total = static_cast<int>(blocks_.size());
  stats_.reduces_total = conf_.n_reduces(n_vms);
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.job_start, tr->ids.cat_mapred,
                stats_.t_start, tr->ids.task, stats_.maps_total, tr->ids.value,
                stats_.reduces_total);
  }

  maps_.reserve(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    maps_.push_back(std::make_unique<MapTask>(*this, static_cast<int>(i), blocks_[i],
                                              /*vm=*/-1));
    pending_maps_.push_back(static_cast<int>(i));
  }
  for (int r = 0; r < stats_.reduces_total; ++r) {
    // Reducers are placed round-robin across VMs up to the slot budget.
    reduces_.push_back(std::make_unique<ReduceTask>(*this, r, r % n_vms));
  }

  free_map_slots_.assign(static_cast<std::size_t>(n_vms), conf_.map_slots);
  free_reduce_slots_.assign(static_cast<std::size_t>(n_vms), conf_.reduce_slots);

  try_assign_maps();
}

void Job::try_assign_maps() {
  const int n_vms = env_.n_vms();
  for (int v = 0; v < n_vms; ++v) {
    while (free_map_slots_[static_cast<std::size_t>(v)] > 0 && !pending_maps_.empty()) {
      // Locality first: a pending map whose block has a replica here.
      auto chosen = pending_maps_.end();
      for (auto it = pending_maps_.begin(); it != pending_maps_.end(); ++it) {
        for (const auto& rep : blocks_[static_cast<std::size_t>(*it)].replicas) {
          if (rep.vm == v) {
            chosen = it;
            break;
          }
        }
        if (chosen != pending_maps_.end()) break;
      }
      if (chosen == pending_maps_.end()) chosen = pending_maps_.begin();

      const int map_id = *chosen;
      pending_maps_.erase(chosen);
      --free_map_slots_[static_cast<std::size_t>(v)];

      // Re-create the task bound to its VM (placement decided at assignment).
      maps_[static_cast<std::size_t>(map_id)] = std::make_unique<MapTask>(
          *this, map_id, blocks_[static_cast<std::size_t>(map_id)], v);
      MapTask* task = maps_[static_cast<std::size_t>(map_id)].get();
      simr().after(conf_.assign_latency, [task] { task->start(); });
    }
  }
}

void Job::launch_reducers_if_ready() {
  if (reducers_launched_) return;
  const int threshold = std::max(
      1, static_cast<int>(conf_.slowstart * static_cast<double>(stats_.maps_total)));
  if (maps_done_ < threshold) return;
  reducers_launched_ = true;

  for (auto& rt : reduces_) {
    const int v = rt->vm();
    if (free_reduce_slots_[static_cast<std::size_t>(v)] <= 0) {
      // Over-subscribed (more reducers than slots): queue behind a slot by
      // keeping it unstarted; it will launch when a reducer on v finishes.
      continue;
    }
    --free_reduce_slots_[static_cast<std::size_t>(v)];
    ReduceTask* task = rt.get();
    simr().after(conf_.assign_latency, [this, task] {
      for (const auto& mo : completed_outputs_) task->map_output_ready(mo);
      task->start();
    });
  }
}

void Job::map_finished(MapTask& task, MapOutput out) {
  ++maps_done_;
  stats_.map_input_bytes += blocks_[static_cast<std::size_t>(out.map_id)].bytes;
  stats_.map_output_bytes += out.bytes;
  completed_outputs_.push_back(out);

  if (maps_done_ == 1) {
    stats_.t_first_map_done = simr().now();
    job_instant(&trace::Tracer::CommonIds::first_map_done, stats_.t_first_map_done);
    if (on_first_map_done) on_first_map_done(simr().now());
  }
  // Feed reducers that already started.
  for (auto& rt : reduces_) {
    if (rt->started()) rt->map_output_ready(out);
  }

  ++free_map_slots_[static_cast<std::size_t>(task.vm())];
  if (maps_done_ == stats_.maps_total) {
    stats_.t_maps_done = simr().now();
    job_instant(&trace::Tracer::CommonIds::maps_done, stats_.t_maps_done);
    if (on_maps_done) on_maps_done(simr().now());
  } else {
    try_assign_maps();
  }
  launch_reducers_if_ready();
  update_progress();
}

void Job::reducer_shuffle_finished(ReduceTask&) {
  ++reducers_shuffle_done_;
  if (reducers_shuffle_done_ == stats_.reduces_total) {
    stats_.t_shuffle_done = simr().now();
    job_instant(&trace::Tracer::CommonIds::shuffle_done, stats_.t_shuffle_done);
    if (on_shuffle_done) on_shuffle_done(simr().now());
  }
}

void Job::reduce_finished(ReduceTask& task) {
  ++reduces_done_;
  const int v = task.vm();
  ++free_reduce_slots_[static_cast<std::size_t>(v)];

  // Launch a queued reducer waiting for this slot, if any.
  if (reducers_launched_) {
    for (auto& rt : reduces_) {
      if (!rt->started() && rt->vm() == v &&
          free_reduce_slots_[static_cast<std::size_t>(v)] > 0) {
        --free_reduce_slots_[static_cast<std::size_t>(v)];
        ReduceTask* t = rt.get();
        simr().after(conf_.assign_latency, [this, t] {
          for (const auto& mo : completed_outputs_) t->map_output_ready(mo);
          t->start();
        });
        break;
      }
    }
  }

  update_progress();
  if (reduces_done_ == stats_.reduces_total && !done_) {
    done_ = true;
    stats_.t_done = simr().now();
    job_instant(&trace::Tracer::CommonIds::job_done, stats_.t_done);
    if (on_done) on_done(simr().now());
  }
}

double Job::progress() const {
  const double map_p =
      stats_.maps_total > 0
          ? static_cast<double>(maps_done_) / stats_.maps_total
          : 1.0;
  double red_p = 0.0;
  if (!reduces_.empty()) {
    for (const auto& rt : reduces_) red_p += rt->progress();
    red_p /= static_cast<double>(reduces_.size());
  } else {
    red_p = 1.0;
  }
  return 0.5 * map_p + 0.5 * red_p;
}

void Job::update_progress() {
  const double p = progress();
  while (p + 1e-12 >= next_milestone_ && next_milestone_ <= 1.0 + 1e-12) {
    stats_.milestones.push_back({next_milestone_, simr().now()});
    next_milestone_ += 0.05;
  }
}

}  // namespace iosim::mapred
