#include "mapred/job.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "trace/trace.hpp"

namespace iosim::mapred {

namespace {
// `what` selects a pre-interned name from the *installed* tracer, which the
// call site cannot touch before the null check.
void job_instant(trace::Str trace::Tracer::CommonIds::* what, sim::Time t) {
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.*what, tr->ids.cat_mapred, t);
  }
}
}  // namespace

Job::Job(ClusterEnv& env, JobConf conf, std::uint64_t seed)
    : env_(env), conf_(std::move(conf)), rng_(seed) {}

Job::~Job() { unregister_blocks(); }

void Job::unregister_blocks() {
  if (!blocks_registered_) return;
  blocks_registered_ = false;
  env_.members->unregister_job_blocks(job_id_);
}

void Job::run() {
  const int n_vms = env_.n_vms();
  assert(n_vms > 0);
  const auto blocks_per_vm =
      static_cast<int>((conf_.input_bytes_per_vm + conf_.block_bytes - 1) / conf_.block_bytes);

  if (auto* ck = check::auditor()) {
    // Before the HDFS layout, so the blocks created next are attributed to
    // this job (block ids restart at 0 for every job's input).
    ck->on_job_start(job_id_, blocks_per_vm * n_vms, conf_.n_reduces(n_vms),
                     conf_.max_task_attempts);
  }

  // Lay out the input in HDFS (allocations land in each VM's data zone).
  blocks_ = env_.dfs->create_input(
      blocks_per_vm, conf_.block_bytes, [this](int vm_id, disk::Lba sectors) {
        return env_.vms[static_cast<std::size_t>(vm_id)].vm->alloc(
            virt::DiskZone::kData, sectors);
      });
  if (env_.members != nullptr) {
    // NameNode bookkeeping: membership re-replicates these blocks when a
    // replica holder is declared dead (repairs mutate blocks_ in place, so
    // newly placed attempts see the healed replica set).
    env_.members->register_job_blocks(job_id_, &blocks_);
    blocks_registered_ = true;
  }

  stats_.t_start = simr().now();
  stats_.maps_total = static_cast<int>(blocks_.size());
  stats_.reduces_total = conf_.n_reduces(n_vms);
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.job_start, tr->ids.cat_mapred,
                stats_.t_start, tr->ids.task, stats_.maps_total, tr->ids.value,
                stats_.reduces_total);
  }

  maps_.reserve(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    maps_.push_back(std::make_unique<MapTask>(*this, static_cast<int>(i), blocks_[i],
                                              /*vm=*/-1));
    pending_maps_.push_back(static_cast<int>(i));
  }
  spec_maps_.resize(blocks_.size());
  map_done_flags_.assign(blocks_.size(), 0);
  map_running_.assign(blocks_.size(), 0);
  map_failures_.assign(blocks_.size(), 0);
  for (int r = 0; r < stats_.reduces_total; ++r) {
    // Reducers are placed round-robin across VMs up to the slot budget.
    reduces_.push_back(std::make_unique<ReduceTask>(*this, r, r % n_vms));
  }
  reduce_failures_.assign(static_cast<std::size_t>(stats_.reduces_total), 0);
  reduce_shuffle_counted_.assign(static_cast<std::size_t>(stats_.reduces_total), 0);
  reduce_assigned_.assign(static_cast<std::size_t>(stats_.reduces_total), 0);

  free_map_slots_.assign(static_cast<std::size_t>(n_vms), conf_.map_slots);
  free_reduce_slots_.assign(static_cast<std::size_t>(n_vms), conf_.reduce_slots);

  if (env_.faults != nullptr) {
    // The JobTracker loses heartbeats from a dead TaskTracker: running
    // attempts there are declared failed, and the VM is masked from the
    // scheduler until it reports back in.
    env_.faults->on_vm_down([this](int v, sim::Time) { handle_vm_down(v); });
    env_.faults->on_vm_up([this](int v, sim::Time) { handle_vm_up(v); });
  }
  if (env_.members != nullptr) {
    env_.members->on_declared_dead(
        [this](int v, sim::Time) { handle_vm_declared_dead(v); });
    // Fresh capacity after a rejoin or a cleared blacklist: rescan.
    env_.members->on_schedulable_again(
        [this](int v, sim::Time) { handle_vm_up(v); });
  }
  if (conf_.speculative_execution) schedule_speculation_scan();

  try_assign_maps();
}

bool Job::map_slot_free(int v) const {
  return arbiter_ != nullptr ? arbiter_->can_acquire_map(job_id_, v)
                             : free_map_slots_[static_cast<std::size_t>(v)] > 0;
}

void Job::take_map_slot(int v) {
  if (arbiter_ != nullptr) {
    arbiter_->acquire_map(job_id_, v);
  } else {
    --free_map_slots_[static_cast<std::size_t>(v)];
  }
}

void Job::give_map_slot(int v) {
  if (arbiter_ != nullptr) {
    arbiter_->release_map(job_id_, v);
  } else {
    ++free_map_slots_[static_cast<std::size_t>(v)];
  }
}

bool Job::reduce_slot_free(int v) const {
  return arbiter_ != nullptr ? arbiter_->can_acquire_reduce(job_id_, v)
                             : free_reduce_slots_[static_cast<std::size_t>(v)] > 0;
}

void Job::take_reduce_slot(int v) {
  if (arbiter_ != nullptr) {
    arbiter_->acquire_reduce(job_id_, v);
  } else {
    --free_reduce_slots_[static_cast<std::size_t>(v)];
  }
}

void Job::give_reduce_slot(int v) {
  if (arbiter_ != nullptr) {
    arbiter_->release_reduce(job_id_, v);
  } else {
    ++free_reduce_slots_[static_cast<std::size_t>(v)];
  }
}

int Job::queued_reduce_count() const {
  if (!reducers_launched_ || done_ || failed_) return 0;
  int n = 0;
  for (const auto& rt : reduces_) {
    if (rt && !reduce_assigned_[static_cast<std::size_t>(rt->task_id())]) ++n;
  }
  return n;
}

void Job::kick() {
  if (done_ || failed_) return;
  try_assign_maps();
  pump_queued_reducers();
}

void Job::try_assign_maps() {
  const int n_vms = env_.n_vms();
  for (int v = 0; v < n_vms; ++v) {
    if (!env_.schedulable(v)) continue;
    while (map_slot_free(v) && !pending_maps_.empty()) {
      // Locality first: a pending map whose block has a replica here.
      auto chosen = pending_maps_.end();
      for (auto it = pending_maps_.begin(); it != pending_maps_.end(); ++it) {
        for (const auto& rep : blocks_[static_cast<std::size_t>(*it)].replicas) {
          if (rep.vm == v) {
            chosen = it;
            break;
          }
        }
        if (chosen != pending_maps_.end()) break;
      }
      if (chosen == pending_maps_.end()) chosen = pending_maps_.begin();

      const int map_id = *chosen;
      pending_maps_.erase(chosen);
      take_map_slot(v);

      // Re-create the task bound to its VM (placement decided at assignment).
      const auto idx = static_cast<std::size_t>(map_id);
      maps_[idx] = std::make_unique<MapTask>(*this, map_id, blocks_[idx], v,
                                             /*attempt=*/map_failures_[idx] + 1);
      ++map_running_[idx];
      if (auto* ck = check::auditor()) {
        ck->on_map_attempt_start(job_id_, map_id, map_failures_[idx] + 1, v,
                                 map_running_[idx], /*speculative=*/false,
                                 simr().now().ns());
      }
      MapTask* task = maps_[idx].get();
      simr().after(conf_.assign_latency, [task] { task->start(); });
    }
  }
}

void Job::start_reducer(ReduceTask* task) {
  if (auto* ck = check::auditor()) {
    ck->on_reduce_attempt_start(job_id_, task->task_id(), task->attempt(),
                                task->vm(), simr().now().ns());
  }
  simr().after(conf_.assign_latency, [this, task] {
    for (const auto& mo : completed_outputs_) task->map_output_ready(mo);
    task->start();
  });
}

int Job::resolve_reduce_vm(int preferred) const {
  if (env_.schedulable(preferred)) return preferred;
  const int n = env_.n_vms();
  for (int i = 1; i <= n; ++i) {
    const int cand = (preferred + i) % n;
    if (env_.schedulable(cand)) return cand;
  }
  return -1;
}

void Job::launch_reducers_if_ready() {
  if (reducers_launched_) return;
  const int threshold = std::max(
      1, static_cast<int>(conf_.slowstart * static_cast<double>(stats_.maps_total)));
  if (maps_done_ < threshold) return;
  reducers_launched_ = true;

  for (auto& rt : reduces_) {
    if (!rt) continue;
    // Re-place a reducer whose round-robin VM is dead or blacklisted; with
    // no schedulable VM at all it stays queued for pump_queued_reducers.
    const int v = resolve_reduce_vm(rt->vm());
    if (v < 0) continue;
    if (v != rt->vm()) {
      rt = std::make_unique<ReduceTask>(*this, rt->task_id(), v, rt->attempt());
    }
    if (!reduce_slot_free(v)) {
      // Over-subscribed (more reducers than slots): queue behind a slot by
      // keeping it unstarted; it will launch when a reducer on v finishes.
      continue;
    }
    reduce_assigned_[static_cast<std::size_t>(rt->task_id())] = 1;
    take_reduce_slot(v);
    start_reducer(rt.get());
  }
}

void Job::pump_queued_reducers() {
  if (!reducers_launched_) return;
  for (auto& rt : reduces_) {
    if (!rt || reduce_assigned_[static_cast<std::size_t>(rt->task_id())]) continue;
    const int v = resolve_reduce_vm(rt->vm());
    if (v < 0 || !reduce_slot_free(v)) continue;
    if (v != rt->vm()) {
      rt = std::make_unique<ReduceTask>(*this, rt->task_id(), v, rt->attempt());
    }
    reduce_assigned_[static_cast<std::size_t>(rt->task_id())] = 1;
    take_reduce_slot(v);
    start_reducer(rt.get());
  }
}

void Job::map_finished(MapTask& task, MapOutput out) {
  if (failed_) return;
  const int id = out.map_id;
  const auto idx = static_cast<std::size_t>(id);
  --map_running_[idx];
  give_map_slot(task.vm());

  if (map_done_flags_[idx]) {
    // Photo finish: the other copy committed in the same event batch. The
    // later copy's output is discarded, Hadoop-style.
    retire_map_attempt(task);
    return;
  }
  map_done_flags_[idx] = 1;
  if (auto* ck = check::auditor()) ck->on_map_commit(job_id_, id, simr().now().ns());
  map_dur_sum_ += simr().now() - task.t_start();

  // Winner takes first: cancel the losing copy, free its slot.
  auto cancel_copy = [this](std::unique_ptr<MapTask>& holder) {
    if (!holder || !holder->running()) return;
    MapTask* loser = holder.get();
    loser->cancel();
    --map_running_[static_cast<std::size_t>(loser->task_id())];
    give_map_slot(loser->vm());
    retired_maps_.push_back(std::move(holder));
  };
  if (spec_maps_[idx] && spec_maps_[idx].get() != &task) cancel_copy(spec_maps_[idx]);
  if (maps_[idx] && maps_[idx].get() != &task) cancel_copy(maps_[idx]);

  ++maps_done_;
  stats_.map_input_bytes += blocks_[idx].bytes;
  stats_.map_output_bytes += out.bytes;
  completed_outputs_.push_back(out);

  if (maps_done_ == 1 && !first_map_done_fired_) {
    first_map_done_fired_ = true;
    stats_.t_first_map_done = simr().now();
    job_instant(&trace::Tracer::CommonIds::first_map_done, stats_.t_first_map_done);
    if (on_first_map_done) on_first_map_done(simr().now());
  }
  // Feed reducers that already started.
  for (auto& rt : reduces_) {
    if (rt && rt->started()) rt->map_output_ready(out);
  }

  if (maps_done_ == stats_.maps_total) {
    if (!maps_done_fired_) {
      maps_done_fired_ = true;
      stats_.t_maps_done = simr().now();
      job_instant(&trace::Tracer::CommonIds::maps_done, stats_.t_maps_done);
      if (on_maps_done) on_maps_done(simr().now());
    }
  } else {
    try_assign_maps();
  }
  launch_reducers_if_ready();
  update_progress();
}

void Job::map_attempt_failed(MapTask& task) {
  const int id = task.task_id();
  const auto idx = static_cast<std::size_t>(id);
  --map_running_[idx];
  give_map_slot(task.vm());
  ++stats_.map_attempts_failed;
  const bool spec = task.speculative();
  const int failed_vm = task.vm();
  retire_map_attempt(task);
  if (env_.members != nullptr && env_.vm_alive(failed_vm)) {
    // A failure on a live VM is a strike against it (fail-slow evidence);
    // failures caused by the VM dying under the task are the failure
    // detector's business, not the blacklist's.
    env_.members->note_task_failure(failed_vm);
  }
  if (failed_ || done_ || map_done_flags_[idx]) return;

  auto requeue_after = [this, id](sim::Time delay) {
    simr().after(delay, [this, id] {
      const auto i = static_cast<std::size_t>(id);
      if (failed_ || done_ || map_done_flags_[i] || map_running_[i] > 0) return;
      if (map_pending(id)) return;
      pending_maps_.push_back(id);
      try_assign_maps();
    });
  };

  if (spec) {
    // A lost speculative copy does not burn the attempt budget; but if the
    // primary already failed too, it owns nothing anymore — re-queue here.
    if (map_running_[idx] == 0 && !map_pending(id)) {
      requeue_after(backoff_delay(std::max(1, map_failures_[idx])));
    }
    return;
  }

  const int fails = ++map_failures_[idx];
  if (fails >= conf_.max_task_attempts) {
    if (!env_.vm_alive(failed_vm)) failed_on_dead_vm_ = true;
    abort_job("map " + std::to_string(id) + " failed " + std::to_string(fails) +
              " attempts (last on vm" + std::to_string(failed_vm) + ")");
    return;
  }
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.task_retry, tr->ids.cat_mapred,
                simr().now(), tr->ids.task, id, tr->ids.attempt, fails + 1);
  }
  if (map_running_[idx] == 0) requeue_after(backoff_delay(fails));
}

void Job::map_input_lost(MapTask& task) {
  const int id = task.task_id();
  task.cancel();
  --map_running_[static_cast<std::size_t>(id)];
  give_map_slot(task.vm());
  retire_map_attempt(task);
  failed_on_dead_vm_ = true;
  abort_job("map " + std::to_string(id) +
            " input block unreachable: every replica is on a dead VM");
}

void Job::map_output_lost(int map_id) {
  const auto idx = static_cast<std::size_t>(map_id);
  if (done_ || failed_ || !map_done_flags_[idx]) return;
  // Roll the commit back: the map must produce fresh output on a live VM.
  map_done_flags_[idx] = 0;
  --maps_done_;
  for (auto it = completed_outputs_.begin(); it != completed_outputs_.end(); ++it) {
    if (it->map_id == map_id) {
      completed_outputs_.erase(it);
      break;
    }
  }
  ++stats_.map_outputs_lost;
  if (auto* ck = check::auditor()) {
    ck->on_map_output_lost(job_id_, map_id, simr().now().ns());
  }
  if (auto* tr = trace::tracer()) {
    const trace::Str n = tr->intern("map_output_lost");
    tr->pin_name(n);
    tr->instant(tr->track("mapred"), n, tr->ids.cat_mapred, simr().now(),
                tr->ids.task, map_id);
  }
  if (map_running_[idx] == 0 && !map_pending(map_id)) {
    pending_maps_.push_back(map_id);
    try_assign_maps();
  }
}

void Job::reducer_shuffle_finished(ReduceTask& task) {
  const auto idx = static_cast<std::size_t>(task.task_id());
  if (reduce_shuffle_counted_[idx]) return;  // re-attempt of a counted reducer
  reduce_shuffle_counted_[idx] = 1;
  ++reducers_shuffle_done_;
  if (reducers_shuffle_done_ == stats_.reduces_total) {
    stats_.t_shuffle_done = simr().now();
    job_instant(&trace::Tracer::CommonIds::shuffle_done, stats_.t_shuffle_done);
    if (on_shuffle_done) on_shuffle_done(simr().now());
  }
}

void Job::reduce_finished(ReduceTask& task) {
  if (failed_) return;
  ++reduces_done_;
  if (auto* ck = check::auditor()) {
    ck->on_reduce_commit(job_id_, task.task_id(), simr().now().ns());
  }
  const int v = task.vm();
  give_reduce_slot(v);

  // Launch a queued reducer waiting for this slot, if any. The finished
  // reducer may have outlived its VM's welcome (blacklisted mid-run —
  // running attempts are not killed), so the freed slot is only reusable
  // while the VM is still schedulable; otherwise the queue is re-placed
  // wholesale, which routes waiters to other capacity or leaves them for
  // the membership on_schedulable_again kick.
  if (reducers_launched_ && env_.schedulable(v)) {
    for (auto& rt : reduces_) {
      if (rt && !reduce_assigned_[static_cast<std::size_t>(rt->task_id())] &&
          rt->vm() == v && reduce_slot_free(v)) {
        reduce_assigned_[static_cast<std::size_t>(rt->task_id())] = 1;
        take_reduce_slot(v);
        start_reducer(rt.get());
        break;
      }
    }
  } else if (reducers_launched_) {
    pump_queued_reducers();
  }

  update_progress();
  if (reduces_done_ == stats_.reduces_total && !done_) {
    done_ = true;
    unregister_blocks();  // the job's files leave the namespace
    stats_.t_done = simr().now();
    job_instant(&trace::Tracer::CommonIds::job_done, stats_.t_done);
    if (auto* ck = check::auditor()) {
      ck->on_job_done(job_id_, maps_done_, reduces_done_, stats_.t_done.ns());
    }
    if (on_done) on_done(simr().now());
  }
}

void Job::reduce_attempt_failed(ReduceTask& task) {
  const int id = task.task_id();
  const auto idx = static_cast<std::size_t>(id);
  give_reduce_slot(task.vm());
  reduce_assigned_[idx] = 0;  // the re-attempt competes for a slot again
  ++stats_.reduce_attempts_failed;
  if (reduces_[idx].get() == &task) {
    retired_reduces_.push_back(std::move(reduces_[idx]));
  }
  if (failed_ || done_) return;

  if (env_.members != nullptr && env_.vm_alive(task.vm())) {
    env_.members->note_task_failure(task.vm());
  }

  const int fails = ++reduce_failures_[idx];
  if (fails >= conf_.max_task_attempts) {
    if (!env_.vm_alive(task.vm())) failed_on_dead_vm_ = true;
    abort_job("reduce " + std::to_string(id) + " failed " + std::to_string(fails) +
              " attempts (last on vm" + std::to_string(task.vm()) + ")");
    return;
  }

  // Place the re-attempt on the same VM unless it is down or blacklisted.
  int v = resolve_reduce_vm(task.vm());
  if (v < 0) v = task.vm();  // nowhere schedulable: park on the old VM
  reduces_[idx] = std::make_unique<ReduceTask>(*this, id, v, fails + 1);
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.task_retry, tr->ids.cat_mapred,
                simr().now(), tr->ids.task, 100'000 + id, tr->ids.attempt,
                fails + 1);
  }
  simr().after(backoff_delay(fails), [this, id] {
    const auto i = static_cast<std::size_t>(id);
    if (failed_ || done_) return;
    ReduceTask* rt = reduces_[i].get();
    if (rt == nullptr || reduce_assigned_[i]) return;
    // Placement gone bad during the backoff (declared dead / blacklisted):
    // leave it queued; pump_queued_reducers re-places it when capacity or
    // membership changes.
    if (!env_.schedulable(rt->vm())) return;
    if (!reduce_slot_free(rt->vm())) return;  // the slot-free scan launches it
    reduce_assigned_[i] = 1;
    take_reduce_slot(rt->vm());
    if (auto* ck = check::auditor()) {
      ck->on_reduce_attempt_start(job_id_, rt->task_id(), rt->attempt(),
                                  rt->vm(), simr().now().ns());
    }
    simr().after(conf_.assign_latency, [this, rt] {
      if (failed_ || done_) return;
      for (const auto& mo : completed_outputs_) rt->map_output_ready(mo);
      rt->start();
    });
  });
}

sim::Time Job::backoff_delay(int failures) const {
  sim::Time d = conf_.retry_backoff;
  for (int i = 1; i < failures && d < conf_.retry_backoff_cap; ++i) d = d * 2.0;
  return std::min(d, conf_.retry_backoff_cap);
}

void Job::retire_map_attempt(MapTask& task) {
  const auto idx = static_cast<std::size_t>(task.task_id());
  if (maps_[idx].get() == &task) {
    retired_maps_.push_back(std::move(maps_[idx]));
  } else if (spec_maps_[idx].get() == &task) {
    retired_maps_.push_back(std::move(spec_maps_[idx]));
  }
}

void Job::abort_job(std::string reason) {
  if (done_ || failed_) return;
  failed_ = true;
  failure_ = std::move(reason);
  stats_.failed = true;
  stats_.t_done = simr().now();
  job_instant(&trace::Tracer::CommonIds::job_failed, stats_.t_done);
  // Everything still running goes inert; outstanding completions find the
  // cancelled flag and return. The objects stay owned (graveyard semantics
  // apply to the whole roster now).
  for (auto& m : maps_) {
    if (m) m->cancel();
  }
  for (auto& s : spec_maps_) {
    if (s) s->cancel();
  }
  for (auto& r : reduces_) {
    if (r) r->cancel();
  }
  pending_maps_.clear();
  unregister_blocks();
  // Under an arbiter the cancelled attempts' slots must go back to the
  // shared pool (the legacy single-job path never needed to bother — the
  // run was over). The arbiter owns the ledger, so it returns exactly what
  // this job still holds.
  if (arbiter_ != nullptr) arbiter_->retire_job(job_id_);
  if (on_failed) on_failed(stats_.t_done, failure_);
}

void Job::handle_vm_down(int v) {
  if (done_ || failed_) return;
  // Collect first: fail_attempt() reshuffles the task containers.
  std::vector<MapTask*> dead_maps;
  for (auto& m : maps_) {
    if (m && m->running() && m->vm() == v) dead_maps.push_back(m.get());
  }
  for (auto& s : spec_maps_) {
    if (s && s->running() && s->vm() == v) dead_maps.push_back(s.get());
  }
  std::vector<ReduceTask*> dead_reduces;
  for (auto& r : reduces_) {
    if (r && r->started() && !r->finished() && r->vm() == v) {
      dead_reduces.push_back(r.get());
    }
  }
  for (auto* t : dead_maps) t->fail_attempt();
  for (auto* t : dead_reduces) t->fail_attempt();
}

void Job::handle_vm_up(int) {
  if (done_ || failed_) return;
  try_assign_maps();  // fresh capacity (and unmasked replicas)
  pump_queued_reducers();
}

void Job::handle_vm_declared_dead(int v) {
  if (done_ || failed_) return;
  if (reduces_done_ >= stats_.reduces_total) return;
  // Hadoop 0.19 on a lost TaskTracker: completed maps whose output lived
  // there re-execute, because reducers can no longer fetch it. Only outputs
  // some unfinished reducer still needs — re-running a map nobody will read
  // could outlive the job and trip the drain audit.
  std::vector<int> lost;
  for (const auto& mo : completed_outputs_) {
    if (mo.vm != v) continue;
    bool needed = false;
    for (const auto& rt : reduces_) {
      if (rt && !rt->finished() && !rt->has_fetched(mo.map_id)) {
        needed = true;
        break;
      }
    }
    if (needed) lost.push_back(mo.map_id);
  }
  for (int id : lost) map_output_lost(id);
}

void Job::schedule_speculation_scan() {
  simr().after(conf_.speculative_period, [this] {
    if (done_ || failed_) return;
    speculation_scan();
    schedule_speculation_scan();
  });
}

void Job::speculation_scan() {
  // Hadoop's heuristic, reduced to its core: once enough maps have finished
  // to trust the mean, any running map slower than `slowdown` times the mean
  // gets a second copy on another VM.
  if (maps_done_ >= stats_.maps_total) return;
  if (maps_done_ < conf_.speculative_min_finished) return;
  const auto mean = sim::Time::from_ns(map_dur_sum_.ns() / maps_done_);
  const auto threshold = mean * conf_.speculative_slowdown;
  const auto now = simr().now();
  for (int id = 0; id < stats_.maps_total; ++id) {
    const auto idx = static_cast<std::size_t>(id);
    if (map_done_flags_[idx] || map_running_[idx] != 1) continue;
    MapTask* t = maps_[idx].get();
    if (t == nullptr || !t->running()) continue;  // the live copy is speculative
    if (now - t->t_start() <= threshold) continue;
    launch_speculative_map(id);
  }
}

void Job::launch_speculative_map(int map_id) {
  const auto idx = static_cast<std::size_t>(map_id);
  MapTask* primary = maps_[idx].get();
  int v = -1;
  for (int i = 0; i < env_.n_vms(); ++i) {
    if (i == primary->vm() || !env_.schedulable(i)) continue;
    if (!map_slot_free(i)) continue;
    v = i;
    break;
  }
  if (v < 0) return;  // no spare capacity — try again next scan
  take_map_slot(v);
  ++map_running_[idx];
  if (auto* ck = check::auditor()) {
    ck->on_map_attempt_start(job_id_, map_id, primary->attempt(), v,
                             map_running_[idx],
                             /*speculative=*/true, simr().now().ns());
  }
  if (spec_maps_[idx]) retired_maps_.push_back(std::move(spec_maps_[idx]));
  spec_maps_[idx] = std::make_unique<MapTask>(*this, map_id, blocks_[idx], v,
                                              primary->attempt(), /*speculative=*/true);
  ++stats_.maps_speculated;
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.task_speculate, tr->ids.cat_mapred,
                simr().now(), tr->ids.task, map_id, tr->ids.value, v);
  }
  MapTask* t = spec_maps_[idx].get();
  simr().after(conf_.assign_latency, [t] { t->start(); });
}

bool Job::map_pending(int map_id) const {
  return std::find(pending_maps_.begin(), pending_maps_.end(), map_id) !=
         pending_maps_.end();
}

void Job::note_hdfs_failover(int map_id, int from_vm, int to_vm) {
  ++stats_.hdfs_failovers;
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.hdfs_failover, tr->ids.cat_mapred,
                simr().now(), tr->ids.task, map_id, tr->ids.value, from_vm);
  }
  if (auto* ck = check::auditor()) {
    ck->on_hdfs_failover(job_id_, map_id, from_vm, to_vm, simr().now().ns());
  }
}

void Job::note_fetch_retry(int reduce_id, int map_id) {
  ++stats_.fetch_retries;
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.fetch_retry, tr->ids.cat_mapred,
                simr().now(), tr->ids.task, reduce_id, tr->ids.value, map_id);
  }
}

void Job::note_replica_write_lost(int) {
  ++stats_.replica_writes_lost;
}

double Job::progress() const {
  const double map_p =
      stats_.maps_total > 0
          ? static_cast<double>(maps_done_) / stats_.maps_total
          : 1.0;
  double red_p = 0.0;
  if (!reduces_.empty()) {
    for (const auto& rt : reduces_) {
      if (rt) red_p += rt->progress();
    }
    red_p /= static_cast<double>(reduces_.size());
  } else {
    red_p = 1.0;
  }
  return 0.5 * map_p + 0.5 * red_p;
}

void Job::update_progress() {
  const double p = progress();
  while (p + 1e-12 >= next_milestone_ && next_milestone_ <= 1.0 + 1e-12) {
    stats_.milestones.push_back({next_milestone_, simr().now()});
    next_milestone_ += 0.05;
  }
}

}  // namespace iosim::mapred
