// iosim: job configuration (Hadoop 0.19 defaults where the paper does not
// override them).
#pragma once

#include <cstdint>

#include "mapred/workload_model.hpp"
#include "sim/time.hpp"

namespace iosim::mapred {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * 1024;
inline constexpr std::int64_t kGiB = 1024 * 1024 * 1024;

struct JobConf {
  WorkloadModel workload;

  /// Input data per data node (paper default: 512 MB per VM).
  std::int64_t input_bytes_per_vm = 512 * kMiB;

  /// dfs.block.size (Hadoop 0.19 default 64 MB; one map per block).
  std::int64_t block_bytes = 64 * kMiB;

  /// Task slots per TaskTracker — the paper provisions two concurrent maps
  /// and two reduces per single-vCPU VM.
  int map_slots = 2;
  int reduce_slots = 2;

  /// Reduce tasks per VM (R = reducers_per_vm * n_vms).
  int reducers_per_vm = 2;

  /// Effective request size streaming through the filesystem (256 KB).
  std::int64_t io_unit_bytes = 256 * kKiB;

  /// Outstanding bios per stream: readahead depth for sequential reads and
  /// writeback depth for async writes (2.6-era readahead kept ~1 MB in
  /// flight for a streaming reader; pdflush pushed several MB).
  int read_window = 4;
  int write_window = 8;

  /// Map-side sort buffer (io.sort.mb = 100) and spill threshold
  /// (io.sort.spill.percent = 0.80).
  std::int64_t sort_buffer_bytes = 100 * kMiB;
  double spill_threshold = 0.80;
  /// Accounting overhead of buffered records (keys, pointers, index arrays)
  /// relative to raw bytes — a 64 MB map output occupies ~1.6x that in the
  /// collect buffer, which is why real sort maps spill more than once.
  double sort_record_overhead = 1.6;

  /// Bytes of input processed per read→compute cycle inside a map task.
  std::int64_t map_chunk_bytes = 4 * kMiB;

  /// Parallel fetch threads per reducer (mapred.reduce.parallel.copies = 5).
  int shuffle_parallel = 5;

  /// In-memory shuffle budget per reducer before the in-memory merger
  /// flushes a segment to disk. Hadoop 0.19: shuffle.input.buffer.percent
  /// (0.70) of the 0.19-era default 64 MB task heap region available to the
  /// copier, flushed at shuffle.merge.percent — ~40 MB effective.
  std::int64_t shuffle_mem_bytes = 40 * kMiB;

  /// Fraction of maps that must finish before reducers are scheduled
  /// (mapred.reduce.slowstart.completed.maps).
  double slowstart = 0.05;

  /// Task scheduling latency (heartbeat + JVM reuse; 0.19-era trackers).
  sim::Time assign_latency = sim::Time::from_ms(300);

  // --- failure handling (mapred.map.max.attempts-style semantics) ---

  /// Attempts per task before the job aborts (mapred.map.max.attempts = 4).
  int max_task_attempts = 4;
  /// Re-execution delay after a failed attempt, doubled per attempt up to
  /// the cap: min(retry_backoff_cap, retry_backoff * 2^(failures-1)).
  sim::Time retry_backoff = sim::Time::from_sec(1);
  sim::Time retry_backoff_cap = sim::Time::from_sec(30);
  /// Shuffle fetch retries per map output before the reduce attempt fails.
  int max_fetch_retries = 8;
  /// Input-read failovers per map attempt before the attempt fails (the
  /// DFSClient's bounded block-fetch retries). Without a bound, two
  /// replicas that both sit behind a high-error-rate disk would ping-pong
  /// the read forever instead of surfacing a task failure.
  int max_read_failovers = 8;

  // --- speculative execution (mapred.map.tasks.speculative.execution) ---

  /// Off by default: a healthy run stays byte-identical with or without the
  /// straggler scan (the scan itself perturbs nothing, but keeping the
  /// default conservative matches the repo's determinism-first posture).
  bool speculative_execution = false;
  /// A running map is a straggler once its elapsed time exceeds this factor
  /// times the mean duration of finished maps.
  double speculative_slowdown = 1.5;
  /// Straggler scan period.
  sim::Time speculative_period = sim::Time::from_sec(5);
  /// Minimum finished maps before the mean is trusted.
  int speculative_min_finished = 3;

  /// Derived: number of map tasks for a cluster of `n_vms`.
  int n_maps(int n_vms) const {
    return static_cast<int>((input_bytes_per_vm + block_bytes - 1) / block_bytes) * n_vms;
  }
  int n_reduces(int n_vms) const { return reducers_per_vm * n_vms; }
};

}  // namespace iosim::mapred
