// iosim: a Hadoop reduce task.
//
// Three phases, per the paper's decomposition:
//   shuffle — pull one partition from every finished map (up to
//             `shuffle_parallel` concurrent fetches; source-side DataNode
//             disk reads + a network flow; fetched bytes accumulate in a
//             memory budget and are flushed to disk as merged segments),
//   merge/sort — k-way merge of the on-disk segments,
//   reduce — user function on the merged stream, output written to HDFS
//            (local replica + pipelined remote replica).
//
// Failure semantics: one ReduceTask object is one *attempt*. A failed
// shuffle fetch is re-queued with exponential backoff (Hadoop's fetch
// retry), up to `max_fetch_retries` per map output, after which the attempt
// fails. Disk errors during flush/merge fail the attempt. A failed remote
// output-replica write is dropped, not fatal (HDFS pipeline recovery keeps
// the local copy). Cancelled attempts go inert via the `cancelled_` flag;
// the job's graveyard keeps the object alive for in-flight captures.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mapred/map_task.hpp"

namespace iosim::mapred {

class ReduceTask {
 public:
  ReduceTask(Job& job, int task_id, int vm, int attempt = 1);

  void start();
  /// Called by the job whenever a map completes (or, at start, for every
  /// already-completed map).
  void map_output_ready(const MapOutput& mo);

  int task_id() const { return task_id_; }
  int vm() const { return vm_; }
  int attempt() const { return attempt_; }
  /// Whether this attempt already pulled map `map_id`'s partition. The job
  /// consults this when a re-executed map re-advertises output: attempts
  /// that fetched the original copy must not count the fresh one twice.
  bool has_fetched(int map_id) const {
    return static_cast<std::size_t>(map_id) < map_fetched_.size() &&
           map_fetched_[static_cast<std::size_t>(map_id)] != 0;
  }
  bool started() const { return started_; }
  bool shuffle_complete() const { return shuffle_complete_; }
  bool finished() const { return finished_; }

  /// Go inert: all pending completions become no-ops. Idempotent.
  void cancel() { cancelled_ = true; }

  /// Fail this attempt (traces task_fail and reports to the job). Used
  /// internally on I/O errors and by the job when the hosting VM dies.
  void fail_attempt();

  /// Hadoop-style phase progress in [0,1]: shuffle third + merge/reduce
  /// two-thirds (by bytes).
  double progress() const;

 private:
  struct Segment {
    disk::Lba vlba;
    std::int64_t bytes;
  };

  void pump_fetches();
  void fetch(const MapOutput& mo);
  void fetch_arrived(int map_id, std::int64_t bytes);
  void fetch_failed(const MapOutput& mo);
  void flush_memory();
  void maybe_shuffle_done();
  void start_merge_reduce();
  void part_done();

  Job& job_;
  int task_id_;
  int vm_;
  int attempt_;
  std::uint64_t io_ctx_;
  sim::Time t_start_ = sim::Time::zero();         // task start
  sim::Time t_shuffle_done_ = sim::Time::zero();  // shuffle phase end

  bool started_ = false;
  bool cancelled_ = false;
  std::deque<MapOutput> fetch_queue_;
  std::vector<int> fetch_fail_counts_;  // per map id, lazily sized
  std::vector<char> map_fetched_;       // per map id, lazily sized
  int active_fetches_ = 0;
  int maps_fetched_ = 0;
  bool shuffle_complete_ = false;

  std::int64_t mem_used_ = 0;
  std::int64_t received_ = 0;       // total shuffle bytes received
  std::vector<Segment> segments_;   // on-disk merged segments
  int flush_inflight_ = 0;

  std::int64_t merged_ = 0;         // merge/reduce progress in bytes
  std::int64_t merge_total_ = 0;
  int parts_left_ = 0;              // local merge + mem CPU + replication
  bool finished_ = false;
};

}  // namespace iosim::mapred
