#include "mapred/map_task.hpp"

#include <algorithm>
#include <cassert>

#include <string>

#include "mapred/job.hpp"
#include "mapred/merge_op.hpp"
#include "trace/trace.hpp"
#include "virt/io_stream.hpp"

namespace iosim::mapred {

namespace {
sim::Time cpu_cost(double ns_per_byte, std::int64_t bytes) {
  return sim::Time::from_ns(
      static_cast<std::int64_t>(ns_per_byte * static_cast<double>(bytes)));
}
}  // namespace

MapTask::MapTask(Job& job, int task_id, const hdfs::DfsBlock& block, int vm)
    : job_(job), task_id_(task_id), block_(block), vm_(vm),
      io_ctx_(ctx::map_task(task_id)) {}

void MapTask::start() {
  t_start_ = job_.simr().now();
  src_ = job_.env().dfs->pick_replica(block_, vm_);
  local_ = (src_.vm == vm_);
  read_next_chunk();
}

void MapTask::read_next_chunk() {
  const JobConf& c = job_.conf();
  const std::int64_t chunk =
      std::min<std::int64_t>(c.map_chunk_bytes, block_.bytes - read_off_);
  assert(chunk > 0);
  const disk::Lba at = src_.vlba + read_off_ / disk::kSectorBytes;
  read_off_ += chunk;

  virt::IoStreamParams sp;
  sp.unit_sectors = c.io_unit_bytes / disk::kSectorBytes;
  sp.window = c.read_window;  // readahead depth

  const VmHandle& me = job_.vm(vm_);
  if (local_) {
    virt::IoStream::run(*me.vm, io_ctx_, at, chunk, iosched::Dir::kRead,
                        /*sync=*/true, sp,
                        [this, chunk](sim::Time) { chunk_read(chunk); });
  } else {
    // Remote HDFS read: the source DataNode reads the chunk, then it crosses
    // the network, then the mapper consumes it.
    const VmHandle& srcvm = job_.vm(src_.vm);
    virt::IoStream::run(
        *srcvm.vm, ctx::server(src_.vm), at, chunk, iosched::Dir::kRead,
        /*sync=*/true, sp, [this, chunk, &srcvm, &me](sim::Time) {
          job_.env().net->start_flow(srcvm.host, me.host, chunk,
                                     [this, chunk](sim::Time) { chunk_read(chunk); });
        });
  }
}

void MapTask::chunk_read(std::int64_t bytes) {
  const WorkloadModel& w = job_.conf().workload;
  job_.vm(vm_).cpu->run(cpu_cost(w.map_cpu_ns_per_byte, bytes),
                        [this, bytes] { chunk_computed(bytes); });
}

void MapTask::chunk_computed(std::int64_t in_bytes) {
  const JobConf& c = job_.conf();
  buffer_ += static_cast<std::int64_t>(c.workload.map_output_ratio *
                                       static_cast<double>(in_bytes));
  const auto threshold = static_cast<std::int64_t>(
      c.spill_threshold * static_cast<double>(c.sort_buffer_bytes) /
      c.sort_record_overhead);
  if (buffer_ >= threshold) {
    queue_spill(buffer_);
    buffer_ = 0;
  }
  if (read_off_ < block_.bytes) {
    read_next_chunk();
  } else {
    end_of_input();
  }
}

void MapTask::queue_spill(std::int64_t bytes) {
  if (bytes <= 0) return;
  spill_queue_ += bytes;
  if (!spill_running_) start_spill();
}

void MapTask::start_spill() {
  assert(spill_queue_ > 0);
  const std::int64_t bytes = spill_queue_;
  spill_queue_ = 0;
  spill_running_ = true;

  const JobConf& c = job_.conf();
  const VmHandle& me = job_.vm(vm_);
  // Sort the buffer on the vCPU, then stream the spill file out (async
  // writeback; the mapper thread does not wait on it).
  me.cpu->run(cpu_cost(c.workload.sort_cpu_ns_per_byte, bytes), [this, bytes, &me, &c] {
    const disk::Lba at =
        me.vm->alloc(virt::DiskZone::kScratch, bytes / disk::kSectorBytes + 1);
    virt::IoStreamParams sp;
    sp.unit_sectors = c.io_unit_bytes / disk::kSectorBytes;
    sp.window = c.write_window;  // writeback is more aggressive than readahead
    job_.stats_.map_side_spill_bytes += bytes;
    virt::IoStream::run(*me.vm, io_ctx_, at, bytes, iosched::Dir::kWrite,
                        /*sync=*/false, sp, [this, at, bytes](sim::Time) {
                          spills_.push_back({at, bytes});
                          spill_running_ = false;
                          if (spill_queue_ > 0) {
                            start_spill();
                          } else {
                            maybe_finish();
                          }
                        });
  });
}

void MapTask::end_of_input() {
  input_done_ = true;
  queue_spill(buffer_);
  buffer_ = 0;
  maybe_finish();
}

void MapTask::maybe_finish() {
  if (!input_done_ || spill_running_ || spill_queue_ > 0) return;

  if (spills_.empty()) {
    finish(0, 0);  // map produced no output (fully combined away)
    return;
  }
  if (spills_.size() == 1) {
    finish(spills_[0].vlba, spills_[0].bytes);  // promote the only spill
    return;
  }

  // Multi-spill merge into the final map output file.
  const JobConf& c = job_.conf();
  const VmHandle& me = job_.vm(vm_);
  std::int64_t total = 0;
  MergeOpParams mp;
  for (const auto& s : spills_) {
    mp.inputs.push_back({s.vlba, s.bytes});
    total += s.bytes;
  }
  mp.out_vlba = me.vm->alloc(virt::DiskZone::kScratch, total / disk::kSectorBytes + 1);
  mp.write_ratio = 1.0;
  mp.cpu_ns_per_byte = c.workload.sort_cpu_ns_per_byte;
  mp.io_unit_bytes = c.io_unit_bytes;
  mp.window = c.read_window;
  const disk::Lba out = mp.out_vlba;
  MergeOp::run(me, io_ctx_, std::move(mp),
               [this, out, total](sim::Time) { finish(out, total); });
}

void MapTask::finish(disk::Lba out_vlba, std::int64_t out_bytes) {
  if (auto* tr = trace::tracer()) {
    tr->complete(tr->track("tasks/vm" + std::to_string(vm_)), tr->ids.map_span,
                 tr->ids.cat_mapred, t_start_, job_.simr().now(), tr->ids.task,
                 task_id_, tr->ids.bytes, out_bytes);
  }
  MapOutput mo;
  mo.map_id = task_id_;
  mo.vm = vm_;
  mo.vlba = out_vlba;
  mo.bytes = out_bytes;
  job_.map_finished(*this, mo);
}

}  // namespace iosim::mapred
