#include "mapred/map_task.hpp"

#include <algorithm>
#include <cassert>

#include <string>

#include "mapred/job.hpp"
#include "mapred/merge_op.hpp"
#include "trace/trace.hpp"
#include "virt/io_stream.hpp"

namespace iosim::mapred {

namespace {
sim::Time cpu_cost(double ns_per_byte, std::int64_t bytes) {
  return sim::Time::from_ns(
      static_cast<std::int64_t>(ns_per_byte * static_cast<double>(bytes)));
}
}  // namespace

MapTask::MapTask(Job& job, int task_id, const hdfs::DfsBlock& block, int vm,
                 int attempt, bool speculative)
    : job_(job), task_id_(task_id), block_(block), vm_(vm), attempt_(attempt),
      speculative_(speculative), io_ctx_(ctx::map_task(task_id, job.ctx_base())) {}

void MapTask::start() {
  if (cancelled_) return;
  running_ = true;
  t_start_ = job_.simr().now();
  auto& env = job_.env();
  const auto* r = env.dfs->pick_replica_if(
      block_, vm_, [&env](int v) { return env.vm_alive(v); });
  if (r == nullptr) {
    // Every replica of the input block is on a dead VM: the data is gone for
    // as long as the outage lasts. Surface it as a lost-block abort (the
    // DFSClient's BlockMissingException) rather than burning attempts.
    job_.map_input_lost(*this);
    return;
  }
  src_ = *r;
  local_ = (src_.vm == vm_);
  read_next_chunk();
}

void MapTask::read_next_chunk() {
  const JobConf& c = job_.conf();
  const std::int64_t chunk =
      std::min<std::int64_t>(c.map_chunk_bytes, block_.bytes - read_off_);
  assert(chunk > 0);
  const disk::Lba at = src_.vlba + read_off_ / disk::kSectorBytes;
  read_off_ += chunk;

  virt::IoStreamParams sp;
  sp.unit_sectors = c.io_unit_bytes / disk::kSectorBytes;
  sp.window = c.read_window;  // readahead depth
  sp.cancelled = [this] { return cancelled_; };

  const VmHandle& me = job_.vm(vm_);
  if (local_) {
    virt::IoStream::run(*me.vm, io_ctx_, at, chunk, iosched::Dir::kRead,
                        /*sync=*/true, sp,
                        [this, chunk](sim::Time, iosched::IoStatus st) {
                          if (cancelled_) return;
                          if (st != iosched::IoStatus::kOk) {
                            read_failed(chunk);
                            return;
                          }
                          chunk_read(chunk);
                        });
  } else {
    // Remote HDFS read: the source DataNode reads the chunk, then it crosses
    // the network, then the mapper consumes it.
    const VmHandle& srcvm = job_.vm(src_.vm);
    virt::IoStream::run(
        *srcvm.vm, ctx::server(src_.vm), at, chunk, iosched::Dir::kRead,
        /*sync=*/true, sp, [this, chunk, &srcvm, &me](sim::Time, iosched::IoStatus st) {
          if (cancelled_) return;
          if (st != iosched::IoStatus::kOk) {
            read_failed(chunk);
            return;
          }
          job_.env().net->start_flow(srcvm.host, me.host, chunk,
                                     [this, chunk](sim::Time) {
                                       if (cancelled_) return;
                                       chunk_read(chunk);
                                     });
        });
  }
}

void MapTask::read_failed(std::int64_t chunk) {
  // Put the chunk back, then retry it against a different surviving replica
  // (DFSClient marks the bad DataNode dead for this block and re-fetches).
  read_off_ -= chunk;
  if (++read_failovers_ > job_.conf().max_read_failovers) {
    fail_attempt();  // both replicas keep erroring: stop ping-ponging
    return;
  }
  const int bad_vm = src_.vm;
  auto& env = job_.env();
  const auto* r = env.dfs->pick_replica_if(
      block_, vm_, [&env, bad_vm](int v) { return v != bad_vm && env.vm_alive(v); });
  if (r == nullptr) {
    fail_attempt();  // no other source: burn the attempt
    return;
  }
  job_.note_hdfs_failover(task_id_, src_.vm, r->vm);
  src_ = *r;
  local_ = (src_.vm == vm_);
  read_next_chunk();
}

void MapTask::chunk_read(std::int64_t bytes) {
  const WorkloadModel& w = job_.conf().workload;
  job_.vm(vm_).cpu->run(cpu_cost(w.map_cpu_ns_per_byte, bytes),
                        [this, bytes] {
                          if (cancelled_) return;
                          chunk_computed(bytes);
                        });
}

void MapTask::chunk_computed(std::int64_t in_bytes) {
  const JobConf& c = job_.conf();
  buffer_ += static_cast<std::int64_t>(c.workload.map_output_ratio *
                                       static_cast<double>(in_bytes));
  const auto threshold = static_cast<std::int64_t>(
      c.spill_threshold * static_cast<double>(c.sort_buffer_bytes) /
      c.sort_record_overhead);
  if (buffer_ >= threshold) {
    queue_spill(buffer_);
    buffer_ = 0;
  }
  if (read_off_ < block_.bytes) {
    read_next_chunk();
  } else {
    end_of_input();
  }
}

void MapTask::queue_spill(std::int64_t bytes) {
  if (bytes <= 0) return;
  spill_queue_ += bytes;
  if (!spill_running_) start_spill();
}

void MapTask::start_spill() {
  assert(spill_queue_ > 0);
  const std::int64_t bytes = spill_queue_;
  spill_queue_ = 0;
  spill_running_ = true;

  const JobConf& c = job_.conf();
  const VmHandle& me = job_.vm(vm_);
  // Sort the buffer on the vCPU, then stream the spill file out (async
  // writeback; the mapper thread does not wait on it).
  me.cpu->run(cpu_cost(c.workload.sort_cpu_ns_per_byte, bytes), [this, bytes, &me, &c] {
    if (cancelled_) return;
    const disk::Lba at =
        me.vm->alloc(virt::DiskZone::kScratch, bytes / disk::kSectorBytes + 1);
    virt::IoStreamParams sp;
    sp.unit_sectors = c.io_unit_bytes / disk::kSectorBytes;
    sp.window = c.write_window;  // writeback is more aggressive than readahead
    sp.cancelled = [this] { return cancelled_; };
    job_.stats_.map_side_spill_bytes += bytes;
    virt::IoStream::run(*me.vm, io_ctx_, at, bytes, iosched::Dir::kWrite,
                        /*sync=*/false, sp, [this, at, bytes](sim::Time, iosched::IoStatus st) {
                          if (cancelled_) return;
                          if (st != iosched::IoStatus::kOk) {
                            fail_attempt();  // lost spill file: local disk error
                            return;
                          }
                          spills_.push_back({at, bytes});
                          spill_running_ = false;
                          if (spill_queue_ > 0) {
                            start_spill();
                          } else {
                            maybe_finish();
                          }
                        });
  });
}

void MapTask::end_of_input() {
  input_done_ = true;
  queue_spill(buffer_);
  buffer_ = 0;
  maybe_finish();
}

void MapTask::maybe_finish() {
  if (!input_done_ || spill_running_ || spill_queue_ > 0) return;

  if (spills_.empty()) {
    finish(0, 0);  // map produced no output (fully combined away)
    return;
  }
  if (spills_.size() == 1) {
    finish(spills_[0].vlba, spills_[0].bytes);  // promote the only spill
    return;
  }

  // Multi-spill merge into the final map output file.
  const JobConf& c = job_.conf();
  const VmHandle& me = job_.vm(vm_);
  std::int64_t total = 0;
  MergeOpParams mp;
  for (const auto& s : spills_) {
    mp.inputs.push_back({s.vlba, s.bytes});
    total += s.bytes;
  }
  mp.out_vlba = me.vm->alloc(virt::DiskZone::kScratch, total / disk::kSectorBytes + 1);
  mp.write_ratio = 1.0;
  mp.cpu_ns_per_byte = c.workload.sort_cpu_ns_per_byte;
  mp.io_unit_bytes = c.io_unit_bytes;
  mp.window = c.read_window;
  mp.cancelled = [this] { return cancelled_; };
  const disk::Lba out = mp.out_vlba;
  MergeOp::run(me, io_ctx_, std::move(mp),
               [this, out, total](sim::Time, iosched::IoStatus st) {
                 if (cancelled_) return;
                 if (st != iosched::IoStatus::kOk) {
                   fail_attempt();
                   return;
                 }
                 finish(out, total);
               });
}

void MapTask::finish(disk::Lba out_vlba, std::int64_t out_bytes) {
  if (cancelled_) return;
  running_ = false;
  if (auto* tr = trace::tracer()) {
    tr->complete(tr->track("tasks/vm" + std::to_string(vm_)), tr->ids.map_span,
                 tr->ids.cat_mapred, t_start_, job_.simr().now(), tr->ids.task,
                 task_id_, tr->ids.bytes, out_bytes);
  }
  MapOutput mo;
  mo.map_id = task_id_;
  mo.vm = vm_;
  mo.vlba = out_vlba;
  mo.bytes = out_bytes;
  job_.map_finished(*this, mo);
}

void MapTask::fail_attempt() {
  if (cancelled_) return;
  cancel();
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("mapred"), tr->ids.task_fail, tr->ids.cat_mapred,
                job_.simr().now(), tr->ids.task, task_id_, tr->ids.attempt,
                attempt_);
  }
  job_.map_attempt_failed(*this);
}

}  // namespace iosim::mapred
