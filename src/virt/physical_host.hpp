// iosim: one physical machine — disk, Dom0 block layer, and its guests.
#pragma once

#include <memory>
#include <vector>

#include "blk/disk_device.hpp"
#include "iosched/pair.hpp"
#include "trace/trace.hpp"
#include "virt/domu.hpp"

namespace iosim::virt {

using iosched::SchedulerPair;

struct HostConfig {
  disk::DiskParams disk;
  blk::BlockLayerConfig dom0_blk;
  DomUConfig domu;
  /// The disk is divided into this many equal image slots; VM i's disk
  /// image occupies the front `image_frac` of slot i. Spreading the images
  /// across the platter gives inter-VM seeks their real cost.
  int image_slots = 8;
  double image_frac = 0.75;
};

class PhysicalHost {
 public:
  /// `vm_ctx_base`: globally unique context ids handed to the VMs of this
  /// host (vm_ctx_base + local index). `faults` (optional) is handed to the
  /// disk for fail-slow / error injection keyed by `host_id`.
  PhysicalHost(sim::Simulator& simr, HostConfig cfg, int host_id,
               std::uint64_t vm_ctx_base, std::uint64_t seed,
               fault::FaultInjector* faults = nullptr);

  /// Create the next VM. At most `image_slots` VMs fit per host.
  DomU& add_vm();

  int host_id() const { return host_id_; }
  std::size_t vm_count() const { return vms_.size(); }
  DomU& vm(std::size_t i) { return *vms_[i]; }
  const DomU& vm(std::size_t i) const { return *vms_[i]; }

  /// Switch the Dom0 elevator (pays the quiesce freeze).
  void set_vmm_scheduler(iosched::SchedulerKind k) { dom0_->switch_scheduler(k); }
  /// Switch every guest elevator.
  void set_guest_schedulers(iosched::SchedulerKind k) {
    for (auto& vm : vms_) vm->set_scheduler(k);
  }
  /// Apply a (VMM, guest) pair to this host — the paper's primitive.
  void set_pair(SchedulerPair p) {
    if (auto* tr = trace::tracer()) {
      tr->instant(tr->track("host" + std::to_string(host_id_)), tr->ids.pair_switch,
                  tr->ids.cat_virt, simr_.now(), tr->ids.pair, pair_code(p));
    }
    set_vmm_scheduler(p.vmm);
    set_guest_schedulers(p.guest);
  }

  /// Dense encoding of a pair for trace arguments: vmm * 4 + guest.
  static std::int64_t pair_code(SchedulerPair p) {
    return static_cast<std::int64_t>(p.vmm) * 4 + static_cast<std::int64_t>(p.guest);
  }
  SchedulerPair pair() const {
    return {dom0_->scheduler_kind(),
            vms_.empty() ? dom0_->scheduler_kind() : vms_[0]->scheduler()};
  }

  blk::BlockLayer& dom0_layer() { return *dom0_; }
  const blk::DiskDevice& disk() const { return *disk_; }

 private:
  sim::Simulator& simr_;
  HostConfig cfg_;
  int host_id_;
  std::uint64_t vm_ctx_base_;
  std::unique_ptr<blk::DiskDevice> disk_;
  std::unique_ptr<blk::BlockLayer> dom0_;
  std::vector<std::unique_ptr<DomU>> vms_;
};

}  // namespace iosim::virt
