// iosim: helper for issuing a large sequential transfer as a stream of
// fixed-size bios with a bounded window of outstanding requests — the shape
// a real process produces through readahead (reads) or writeback (writes).
#pragma once

#include <functional>
#include <memory>

#include "virt/domu.hpp"

namespace iosim::virt {

struct IoStreamParams {
  /// Bio size (sectors). 512 sectors = 256 KB, the effective request size a
  /// 2.6-era filesystem produced for streaming I/O.
  std::int64_t unit_sectors = 512;
  /// Outstanding bios: 2 for sync reads (readahead depth), larger for
  /// writeback-style async writes.
  int window = 2;
  /// Polled before issuing each bio. When it returns true the stream stops
  /// issuing, drains in-flight bios and reports kError — the issuing
  /// process was killed, so no further I/O may reach the disk.
  std::function<bool()> cancelled;
};

/// Fire-and-forget sequential transfer on a DomU virtual disk. The object
/// manages its own lifetime; `on_done(t, status)` is invoked once after the
/// last bio completes. On the first bio error the stream stops issuing new
/// bios, drains the ones already in flight, and reports kError — the shape
/// of a read() loop hitting EIO.
class IoStream {
 public:
  /// Issue `bytes` at `vlba` for task `ctx`. Rounds the byte count up to
  /// whole sectors.
  static void run(DomU& vm, std::uint64_t ctx, disk::Lba vlba, std::int64_t bytes,
                  iosched::Dir dir, bool sync, IoStreamParams params,
                  iosched::CompletionFn on_done);

 private:
  IoStream(DomU& vm, std::uint64_t ctx, disk::Lba vlba, std::int64_t sectors,
           iosched::Dir dir, bool sync, IoStreamParams params,
           iosched::CompletionFn on_done)
      : vm_(vm), ctx_(ctx), next_lba_(vlba), end_lba_(vlba + sectors), dir_(dir),
        sync_(sync), p_(params), on_done_(std::move(on_done)) {}

  void pump(std::shared_ptr<IoStream> self);

  DomU& vm_;
  std::uint64_t ctx_;
  disk::Lba next_lba_;
  disk::Lba end_lba_;
  iosched::Dir dir_;
  bool sync_;
  IoStreamParams p_;
  iosched::CompletionFn on_done_;
  int outstanding_ = 0;
  bool failed_ = false;
  bool done_fired_ = false;
};

}  // namespace iosim::virt
