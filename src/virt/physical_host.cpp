#include "virt/physical_host.hpp"

#include <cassert>
#include <string>

namespace iosim::virt {

PhysicalHost::PhysicalHost(sim::Simulator& simr, HostConfig cfg, int host_id,
                           std::uint64_t vm_ctx_base, std::uint64_t seed,
                           fault::FaultInjector* faults)
    : simr_(simr), cfg_(cfg), host_id_(host_id), vm_ctx_base_(vm_ctx_base) {
  disk_ = std::make_unique<blk::DiskDevice>(simr_, cfg_.disk, seed, faults, host_id);
  disk_->set_trace_name("host" + std::to_string(host_id) + "/disk");
  blk::BlockLayerConfig dcfg = cfg_.dom0_blk;
  dcfg.name = "host" + std::to_string(host_id) + "/dom0";
  dcfg.obs_role = obs::LayerRole::kDom0;
  dcfg.obs_host = host_id;
  dom0_ = std::make_unique<blk::BlockLayer>(simr_, *disk_, dcfg);
}

DomU& PhysicalHost::add_vm() {
  const auto i = static_cast<int>(vms_.size());
  assert(i < cfg_.image_slots && "host out of disk-image slots");
  const disk::Lba slot = cfg_.disk.capacity_sectors / cfg_.image_slots;
  const disk::Lba base = slot * i;
  const auto image_sectors =
      static_cast<disk::Lba>(static_cast<double>(slot) * cfg_.image_frac);

  DomUConfig vcfg = cfg_.domu;
  vcfg.guest_blk.name =
      "host" + std::to_string(host_id_) + "/vm" + std::to_string(i);
  vcfg.guest_blk.obs_role = obs::LayerRole::kGuest;
  vcfg.guest_blk.obs_host = host_id_;
  vcfg.guest_blk.obs_vm = i;
  vms_.push_back(std::make_unique<DomU>(simr_, vm_ctx_base_ + static_cast<std::uint64_t>(i),
                                        *dom0_, base, image_sectors, vcfg));
  if (auto* tr = trace::tracer()) {
    // Consolidation event: one more VM sharing this host's disk.
    tr->instant(tr->track("host" + std::to_string(host_id_)), tr->ids.vm_boot,
                tr->ids.cat_virt, simr_.now(), tr->ids.index, i);
  }
  return *vms_.back();
}

}  // namespace iosim::virt
