// iosim: a guest VM (DomU) — its virtual disk, guest block layer, and a
// simple extent allocator for placing files on the virtual disk.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "blk/block_layer.hpp"
#include "virt/blkfront_ring.hpp"

namespace iosim::virt {

using disk::Lba;
using iosched::Dir;
using iosched::SchedulerKind;

/// Zones of a VM's virtual disk. Files of the same role are allocated near
/// each other — HDFS data near the front of the image, map/reduce scratch in
/// the middle, job output behind it — so intra-VM seeks have realistic
/// structure instead of a single bump pointer.
enum class DiskZone : std::uint8_t { kData = 0, kScratch = 1, kOutput = 2 };
inline constexpr int kNumDiskZones = 3;

struct DomUConfig {
  blk::BlockLayerConfig guest_blk;
  RingParams ring;
  /// Zone split of the image: fractions of the image size (must sum <= 1).
  double data_frac = 0.40;
  double scratch_frac = 0.40;
};

class DomU {
 public:
  /// `vm_ctx` is the identity the Dom0 elevator sees for all of this VM's
  /// I/O; `image_base`/`image_sectors` is the VM disk image's physical
  /// extent on the host disk.
  DomU(sim::Simulator& simr, std::uint64_t vm_ctx, blk::BlockLayer& dom0,
       Lba image_base, Lba image_sectors, const DomUConfig& cfg);

  std::uint64_t vm_ctx() const { return vm_ctx_; }
  Lba image_sectors() const { return image_sectors_; }

  /// Submit one guest-level I/O. `ctx` identifies the issuing task inside
  /// the guest (the guest elevator's "process"). The callback receives the
  /// completion time and the outcome (kError when the physical command
  /// failed — propagated up through the split-driver ring).
  void submit_io(std::uint64_t ctx, Lba vlba, std::int64_t sectors, Dir dir,
                 bool sync, iosched::CompletionFn on_complete);

  /// Allocate `sectors` in the given zone of the virtual disk. Returns the
  /// starting virtual LBA. Wraps around within the zone when exhausted
  /// (scratch space is reused, like a filesystem reusing freed extents).
  Lba alloc(DiskZone zone, Lba sectors);

  void set_scheduler(SchedulerKind k) { guest_layer_->switch_scheduler(k); }
  SchedulerKind scheduler() const { return guest_layer_->scheduler_kind(); }

  blk::BlockLayer& layer() { return *guest_layer_; }
  const blk::BlockLayer& layer() const { return *guest_layer_; }

 private:
  std::uint64_t vm_ctx_;
  Lba image_sectors_;
  std::unique_ptr<BlkfrontRing> ring_;
  std::unique_ptr<blk::BlockLayer> guest_layer_;

  struct Zone {
    Lba base;
    Lba size;
    Lba next;
  };
  Zone zones_[kNumDiskZones];
};

}  // namespace iosim::virt
