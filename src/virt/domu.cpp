#include "virt/domu.hpp"

#include <cassert>

namespace iosim::virt {

DomU::DomU(sim::Simulator& simr, std::uint64_t vm_ctx, blk::BlockLayer& dom0,
           Lba image_base, Lba image_sectors, const DomUConfig& cfg)
    : vm_ctx_(vm_ctx), image_sectors_(image_sectors) {
  ring_ = std::make_unique<BlkfrontRing>(simr, dom0, vm_ctx, image_base, cfg.ring);
  guest_layer_ = std::make_unique<blk::BlockLayer>(simr, *ring_, cfg.guest_blk);

  const Lba data_sz = static_cast<Lba>(static_cast<double>(image_sectors) * cfg.data_frac);
  const Lba scratch_sz = static_cast<Lba>(static_cast<double>(image_sectors) * cfg.scratch_frac);
  const Lba output_sz = image_sectors - data_sz - scratch_sz;
  zones_[0] = Zone{0, data_sz, 0};
  zones_[1] = Zone{data_sz, scratch_sz, data_sz};
  zones_[2] = Zone{data_sz + scratch_sz, output_sz, data_sz + scratch_sz};
}

void DomU::submit_io(std::uint64_t ctx, Lba vlba, std::int64_t sectors, Dir dir,
                     bool sync,
                     iosched::CompletionFn on_complete) {
  assert(vlba >= 0 && vlba + sectors <= image_sectors_);
  blk::Bio bio;
  bio.lba = vlba;
  bio.sectors = sectors;
  bio.dir = dir;
  bio.sync = sync;
  bio.ctx = ctx;
  bio.on_complete = std::move(on_complete);
  guest_layer_->submit(std::move(bio));
}

Lba DomU::alloc(DiskZone zone, Lba sectors) {
  Zone& z = zones_[static_cast<int>(zone)];
  assert(sectors <= z.size);
  if (z.next + sectors > z.base + z.size) z.next = z.base;  // wrap: reuse
  const Lba at = z.next;
  z.next += sectors;
  return at;
}

}  // namespace iosim::virt
