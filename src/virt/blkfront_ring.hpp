// iosim: the Xen split-driver block path.
//
// The guest block layer dispatches into this sink, which models the
// blkfront/blkback shared ring: guest requests are split into ring segments
// of at most 11 pages (44 KB) — the blkif protocol limit — each crossing
// the ring with a small grant/hypercall latency and being re-submitted into
// the Dom0 block layer with (a) the LBA translated into the VM's disk-image
// extent and (b) the issuing context rewritten to the VM id. The Dom0
// elevator therefore sees each VM as one "process" issuing 44 KB bios (the
// paper's premise: "VMM treats all the VMs as process"), and its merging /
// sorting quality decides how much of the stream's sequentiality survives —
// which is exactly why the VMM-level scheduler choice matters so much.
#pragma once

#include "blk/block_layer.hpp"
#include "blk/request_sink.hpp"
#include "check/check.hpp"
#include "sim/simulator.hpp"

namespace iosim::virt {

using blk::BlockLayer;
using iosched::Request;
using sim::Time;

struct RingParams {
  /// Outstanding ring segments per VM (blkif ring: 32 requests of up to 11
  /// segments; we count segments, the unit that actually queues in Dom0).
  int slots = 32;
  /// blkif segment limit: 11 pages = 88 sectors = 44 KB.
  std::int64_t max_segment_sectors = 88;
  /// One-way latency of a request/response crossing the ring (grant map +
  /// event channel). ~50 us for the paper's era.
  Time hop_latency = Time::from_us(50);
};

class BlkfrontRing final : public blk::RequestSink {
 public:
  BlkfrontRing(sim::Simulator& simr, BlockLayer& dom0, std::uint64_t vm_ctx,
               disk::Lba image_base, RingParams params)
      : simr_(simr), dom0_(dom0), vm_ctx_(vm_ctx), image_base_(image_base), p_(params) {}

  bool can_accept() const override { return outstanding_ < p_.slots; }

  void submit(Request* rq, Time now) override {
    (void)now;
    const auto n_segs = static_cast<int>(
        (rq->sectors + p_.max_segment_sectors - 1) / p_.max_segment_sectors);
    if (auto* ck = check::auditor()) {
      ck->on_ring_submit(this, vm_ctx_, outstanding_, n_segs, p_.slots,
                         simr_.now().ns());
    }
    outstanding_ += n_segs;

    // Split into blkif segments; each becomes a Dom0 bio. Adjacent segments
    // of one stream re-merge in the Dom0 elevator when they queue up there.
    auto remaining = std::make_shared<int>(n_segs);
    for (int s = 0; s < n_segs; ++s) {
      const disk::Lba seg_lba = rq->lba + static_cast<disk::Lba>(s) * p_.max_segment_sectors;
      const std::int64_t seg_sectors =
          std::min<std::int64_t>(p_.max_segment_sectors, rq->end() - seg_lba);
      simr_.after(p_.hop_latency, [this, rq, seg_lba, seg_sectors, remaining] {
        blk::Bio bio;
        bio.lba = image_base_ + seg_lba;
        bio.sectors = seg_sectors;
        bio.dir = rq->dir;
        bio.sync = rq->sync;
        bio.ctx = vm_ctx_;
        // Every segment carries the guest request's attribution handle so
        // the Dom0 layer can stamp arrival/dispatch/completion on it.
        bio.attr = rq->attrs.empty() ? obs::kNoAttr : rq->attrs.front();
        bio.on_complete = [this, rq, remaining](Time, blk::IoStatus st) {
          // Any failed segment fails the whole guest request (blkback
          // reports one status per ring request).
          if (st != blk::IoStatus::kOk) rq->status = st;
          simr_.after(p_.hop_latency, [this, rq, remaining] {
            --outstanding_;
            if (auto* ck = check::auditor()) {
              ck->on_ring_complete(this, outstanding_, simr_.now().ns());
            }
            if (--*remaining == 0) {
              complete(rq, simr_.now());
            }
            ready(simr_.now());
          });
        };
        dom0_.submit(std::move(bio));
      });
    }
  }

  int outstanding() const { return outstanding_; }

 private:
  sim::Simulator& simr_;
  BlockLayer& dom0_;
  std::uint64_t vm_ctx_;
  disk::Lba image_base_;
  RingParams p_;
  int outstanding_ = 0;
};

}  // namespace iosim::virt
