#include "virt/io_stream.hpp"

#include <cassert>

#include "disk/disk_model.hpp"

namespace iosim::virt {

void IoStream::run(DomU& vm, std::uint64_t ctx, disk::Lba vlba, std::int64_t bytes,
                   iosched::Dir dir, bool sync, IoStreamParams params,
                   iosched::CompletionFn on_done) {
  assert(bytes > 0);
  const auto sectors =
      (bytes + disk::kSectorBytes - 1) / disk::kSectorBytes;
  // Private constructor: go through shared_ptr so completions keep us alive.
  auto self = std::shared_ptr<IoStream>(
      new IoStream(vm, ctx, vlba, sectors, dir, sync, params, std::move(on_done)));
  self->pump(self);
}

void IoStream::pump(std::shared_ptr<IoStream> self) {
  if (p_.cancelled && p_.cancelled()) failed_ = true;
  while (!failed_ && outstanding_ < p_.window && next_lba_ < end_lba_) {
    const disk::Lba lba = next_lba_;
    const std::int64_t n = std::min<std::int64_t>(p_.unit_sectors, end_lba_ - lba);
    next_lba_ += n;
    ++outstanding_;
    vm_.submit_io(ctx_, lba, n, dir_, sync_,
                  [this, self](sim::Time t, iosched::IoStatus st) {
      --outstanding_;
      if (st != iosched::IoStatus::kOk) failed_ = true;
      if (!failed_ && next_lba_ < end_lba_) {
        pump(self);
      } else if (outstanding_ == 0 && !done_fired_) {
        done_fired_ = true;
        if (on_done_) {
          on_done_(t, failed_ ? iosched::IoStatus::kError : iosched::IoStatus::kOk);
        }
      }
    });
  }
}

}  // namespace iosim::virt
