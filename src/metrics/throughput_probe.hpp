// iosim: I/O throughput probes for the paper's Fig. 3 style CDFs.
//
// A probe attaches to a BlockLayer's completion stream, records every
// completion (time, bytes), and post-processes the trace into fixed-window
// throughput samples (MB/s per window) — the same thing the paper's iostat
// sampling produced on the testbed.
#pragma once

#include <cstdint>
#include <vector>

#include "blk/block_layer.hpp"
#include "sim/stats.hpp"

namespace iosim::metrics {

using sim::Time;

class ThroughputProbe {
 public:
  /// Attach to `layer`; every request completion is recorded. The observer
  /// is unregistered on destruction, so the probe and the layer may die in
  /// either order.
  explicit ThroughputProbe(blk::BlockLayer& layer) {
    handle_ = layer.add_completion_observer(
        [this](const blk::BlockLayer&, const iosched::Request& rq, Time now) {
          trace_.push_back({now, rq.bytes()});
        });
  }
  ~ThroughputProbe() { handle_.remove(); }
  ThroughputProbe(const ThroughputProbe&) = delete;
  ThroughputProbe& operator=(const ThroughputProbe&) = delete;

  /// Total bytes observed.
  std::int64_t total_bytes() const {
    std::int64_t s = 0;
    for (const auto& e : trace_) s += e.bytes;
    return s;
  }

  /// Mean throughput between the first and last completion, bytes/sec.
  double mean_bps() const {
    if (trace_.size() < 2) return 0.0;
    const double dt = (trace_.back().t - trace_.front().t).sec();
    return dt > 0 ? static_cast<double>(total_bytes()) / dt : 0.0;
  }

  /// Windowed throughput samples in MB/s over [t0, t1) with window `w`.
  /// Windows with zero completions produce 0 samples only when
  /// `include_idle` (the paper's CDFs include idle periods of the run).
  sim::SampleSet windowed_mb_s(Time t0, Time t1, Time w, bool include_idle = true) const {
    sim::SampleSet out;
    if (t1 <= t0 || w <= Time::zero()) return out;
    const auto n_windows = static_cast<std::size_t>((t1 - t0).ns() / w.ns()) + 1;
    std::vector<std::int64_t> bytes(n_windows, 0);
    for (const auto& e : trace_) {
      if (e.t < t0 || e.t >= t1) continue;
      const auto idx = static_cast<std::size_t>((e.t - t0).ns() / w.ns());
      bytes[idx] += e.bytes;
    }
    const double w_sec = w.sec();
    for (std::size_t i = 0; i < n_windows; ++i) {
      if (bytes[i] == 0 && !include_idle) continue;
      out.add(static_cast<double>(bytes[i]) / w_sec / 1e6);
    }
    return out;
  }

  std::size_t completions() const { return trace_.size(); }

 private:
  struct Entry {
    Time t;
    std::int64_t bytes;
  };
  blk::ObserverHandle handle_;
  std::vector<Entry> trace_;
};

}  // namespace iosim::metrics
