#include "metrics/table.hpp"

#include <algorithm>

namespace iosim::metrics {

void Table::print(std::FILE* out) const {
  if (!title_.empty()) std::fprintf(out, "\n== %s ==\n", title_.c_str());

  std::vector<std::size_t> width(headers_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      std::fprintf(out, "%s%-*s", i == 0 ? "" : "  ",
                   static_cast<int>(width[i]), c.c_str());
    }
    std::fprintf(out, "\n");
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  std::string sep(total > 2 ? total - 2 : 0, '-');
  std::fprintf(out, "%s\n", sep.c_str());
  for (const auto& r : rows_) print_row(r);
}

std::string Table::to_csv() const {
  std::string out;
  auto append = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ',';
      out += cells[i];
    }
    out += '\n';
  };
  append(headers_);
  for (const auto& r : rows_) append(r);
  return out;
}

}  // namespace iosim::metrics
