// iosim: render a trace::Registry as a metrics::Table (the flush path for
// `--metrics` in iosimctl and the bench telemetry helper).
#pragma once

#include "metrics/table.hpp"
#include "trace/registry.hpp"

namespace iosim::metrics {

/// One row per registered metric, in first-touch order. Counters report
/// their value; gauges their last value; histograms count/mean/p50/p99/max.
Table registry_table(const trace::Registry& reg, std::string title = "metrics");

}  // namespace iosim::metrics
