#include "metrics/registry_table.hpp"

namespace iosim::metrics {

Table registry_table(const trace::Registry& reg, std::string title) {
  Table tab(std::move(title));
  tab.headers({"metric", "kind", "value", "count", "p50", "p99", "max"});
  for (const auto& item : reg.items()) {
    switch (item.kind) {
      case trace::Registry::Kind::kCounter: {
        const auto& c = reg.counter_at(item.idx);
        tab.row({item.name, "counter", std::to_string(c.value())});
        break;
      }
      case trace::Registry::Kind::kGauge: {
        const auto& g = reg.gauge_at(item.idx);
        tab.row({item.name, "gauge", Table::num(g.value(), 2)});
        break;
      }
      case trace::Registry::Kind::kHistogram: {
        const auto& h = reg.histogram_at(item.idx);
        tab.row({item.name, "histogram", Table::num(h.mean(), 1),
                 std::to_string(h.count()), Table::num(h.quantile(0.5), 1),
                 Table::num(h.quantile(0.99), 1), std::to_string(h.max())});
        break;
      }
    }
  }
  return tab;
}

}  // namespace iosim::metrics
