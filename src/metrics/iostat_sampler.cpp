#include "metrics/iostat_sampler.hpp"

#include <cassert>

#include "trace/registry.hpp"
#include "trace/trace.hpp"

namespace iosim::metrics {

IostatSampler::IostatSampler(sim::Simulator& simr, IostatOptions opt)
    : simr_(simr), opt_(opt) {}

IostatSampler::~IostatSampler() { stop(); }

void IostatSampler::watch(blk::BlockLayer& layer) {
  Watched w;
  w.layer = &layer;
  w.last_bytes[0] = layer.counters().bytes_completed[0];
  w.last_bytes[1] = layer.counters().bytes_completed[1];
  watched_.push_back(std::move(w));
}

const std::string& IostatSampler::layer_name(std::size_t i) const {
  return watched_[i].layer->name();
}

const std::vector<IostatSampler::Sample>& IostatSampler::series(std::size_t i) const {
  return watched_[i].series;
}

void IostatSampler::start() {
  assert(ev_ == sim::kInvalidEvent && "sampler already started");
  last_tick_ = simr_.now();
  ev_ = simr_.after(opt_.period, [this] { tick(); });
}

void IostatSampler::stop() {
  if (ev_ == sim::kInvalidEvent) return;
  simr_.cancel(ev_);
  ev_ = sim::kInvalidEvent;
}

void IostatSampler::tick() {
  ev_ = sim::kInvalidEvent;
  const sim::Time now = simr_.now();
  const double dt = (now - last_tick_).sec();
  last_tick_ = now;
  ++ticks_;

  auto* tr = trace::tracer();
  auto* reg = trace::registry();

  for (auto& w : watched_) {
    const auto& c = w.layer->counters();
    Sample s;
    s.t = now;
    s.queued = w.layer->queued();
    s.in_flight = w.layer->in_flight();
    const std::int64_t dr = c.bytes_completed[0] - w.last_bytes[0];
    const std::int64_t dw = c.bytes_completed[1] - w.last_bytes[1];
    w.last_bytes[0] = c.bytes_completed[0];
    w.last_bytes[1] = c.bytes_completed[1];
    if (dt > 0) {
      s.read_mb_s = static_cast<double>(dr) / dt / 1e6;
      s.write_mb_s = static_cast<double>(dw) / dt / 1e6;
    }
    w.series.push_back(s);

    if (tr != nullptr) {
      const auto track = tr->track(w.layer->name());
      tr->counter(track, tr->ids.queued, now, static_cast<std::int64_t>(s.queued));
      tr->counter(track, tr->ids.in_flight, now, static_cast<std::int64_t>(s.in_flight));
      tr->counter(track, tr->ids.read_mb_s, now, static_cast<std::int64_t>(s.read_mb_s));
      tr->counter(track, tr->ids.write_mb_s, now, static_cast<std::int64_t>(s.write_mb_s));
    }
    if (reg != nullptr) {
      const std::string& n = w.layer->name();
      reg->gauge("iostat." + n + ".queued").set(static_cast<double>(s.queued));
      reg->gauge("iostat." + n + ".in_flight").set(static_cast<double>(s.in_flight));
      reg->histogram("iostat." + n + ".qdepth").record(static_cast<std::int64_t>(s.queued));
      reg->histogram("iostat." + n + ".read_mb_s")
          .record(static_cast<std::int64_t>(s.read_mb_s));
      reg->histogram("iostat." + n + ".write_mb_s")
          .record(static_cast<std::int64_t>(s.write_mb_s));
    }
  }

  if (stop_pred_ && stop_pred_()) return;
  // Drain guard: when every watched layer is idle and no other event is
  // pending (our own tick has already fired, so pending() counts only
  // foreign events), the simulation is over except for us — rescheduling
  // would keep the loop alive forever on runs whose stop predicate never
  // trips (or that never set one). Auto-stop instead.
  if (simr_.pending() == 0) {
    bool idle = true;
    for (const auto& w : watched_) {
      if (w.layer->queued() != 0 || w.layer->in_flight() != 0) {
        idle = false;
        break;
      }
    }
    if (idle) return;
  }
  ev_ = simr_.after(opt_.period, [this] { tick(); });
}

Table IostatSampler::table() const {
  Table tab("iostat (" + Table::num(opt_.period.sec(), 1) + "s windows)");
  tab.headers({"layer", "samples", "avg qdepth", "peak qdepth", "avg read MB/s",
               "avg write MB/s"});
  for (const auto& w : watched_) {
    double q = 0, rd = 0, wr = 0;
    std::size_t peak = 0;
    for (const auto& s : w.series) {
      q += static_cast<double>(s.queued);
      rd += s.read_mb_s;
      wr += s.write_mb_s;
      peak = std::max(peak, s.queued);
    }
    const double n = w.series.empty() ? 1.0 : static_cast<double>(w.series.size());
    tab.row({w.layer->name(), std::to_string(w.series.size()), Table::num(q / n, 1),
             std::to_string(peak), Table::num(rd / n, 1), Table::num(wr / n, 1)});
  }
  return tab;
}

}  // namespace iosim::metrics
