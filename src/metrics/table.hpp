// iosim: aligned-text and CSV table output used by every bench binary.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace iosim::metrics {

/// Minimal table builder: set headers, append rows of strings (helpers for
/// numbers), print aligned text to stdout and/or dump CSV.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  Table& headers(std::vector<std::string> h) {
    headers_ = std::move(h);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 1) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }
  static std::string pct(double v, int precision = 1) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
    return buf;
  }

  void print(std::FILE* out = stdout) const;
  std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iosim::metrics
