// iosim: periodic iostat-style sampler.
//
// Watches any number of BlockLayers and, on a fixed simulated-time period,
// records per-layer queue depth, in-flight count, and per-direction
// throughput over the elapsed interval — the same signal the paper's
// testbed iostat sampling produced. Each tick also feeds the global tracer
// (counter events on the layer's track, so chrome://tracing draws the
// queue-depth and MB/s curves under the spans) and the global metrics
// registry (gauges + histograms), when either is installed.
//
// The sampler reschedules itself on the simulator; because the simulator
// runs until its queue is empty, a self-rescheduling sampler could keep a
// finished simulation alive forever. Three things end it: a stop predicate
// (typically "the job is done"), an explicit stop(), or the built-in drain
// guard — when a tick finds every watched layer idle and no event besides
// the sampler's own pending, it declines to reschedule and the loop drains.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "blk/block_layer.hpp"
#include "metrics/table.hpp"
#include "sim/simulator.hpp"

namespace iosim::metrics {

struct IostatOptions {
  sim::Time period = sim::Time::from_sec(1);
};

class IostatSampler {
 public:
  struct Sample {
    sim::Time t;
    std::size_t queued = 0;
    std::size_t in_flight = 0;
    double read_mb_s = 0.0;
    double write_mb_s = 0.0;
  };

  explicit IostatSampler(sim::Simulator& simr, IostatOptions opt = {});
  ~IostatSampler();
  IostatSampler(const IostatSampler&) = delete;
  IostatSampler& operator=(const IostatSampler&) = delete;

  /// Add a layer to the watch set (before start()).
  void watch(blk::BlockLayer& layer);

  /// Sampling stops (no further events are scheduled) once `pred()` returns
  /// true at a tick. Without one, call stop() explicitly.
  void stop_when(std::function<bool()> pred) { stop_pred_ = std::move(pred); }

  void start();
  void stop();

  std::size_t n_layers() const { return watched_.size(); }
  const std::string& layer_name(std::size_t i) const;
  const std::vector<Sample>& series(std::size_t i) const;
  std::size_t ticks() const { return ticks_; }

  /// Per-layer summary (samples, mean/peak queue depth, mean MB/s each way).
  Table table() const;

 private:
  void tick();

  struct Watched {
    blk::BlockLayer* layer;
    std::int64_t last_bytes[2] = {0, 0};
    std::vector<Sample> series;
  };

  sim::Simulator& simr_;
  IostatOptions opt_;
  std::vector<Watched> watched_;
  std::function<bool()> stop_pred_;
  sim::EventId ev_ = sim::kInvalidEvent;
  sim::Time last_tick_;
  std::size_t ticks_ = 0;
};

}  // namespace iosim::metrics
