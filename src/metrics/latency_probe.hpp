// iosim: request-latency probe.
//
// Records the block-layer residence time (submit -> completion) of every
// request finishing at a layer, separated by direction and sync class.
// Complements the throughput probe: the paper's pipeline-stall arguments
// (sync reads waiting behind writes under noop/deadline) show up here as
// read-latency percentiles.
//
// The probe unregisters its observer on destruction (handle-based removal),
// so it may be destroyed before or after the layer it watches.
#pragma once

#include "blk/block_layer.hpp"
#include "sim/stats.hpp"

namespace iosim::metrics {

class LatencyProbe {
 public:
  explicit LatencyProbe(blk::BlockLayer& layer) {
    handle_ = layer.add_completion_observer(
        [this](const blk::BlockLayer&, const iosched::Request& rq, sim::Time now) {
          const double ms = (now - rq.submit).ms();
          all_.add(ms);
          if (rq.dir == iosched::Dir::kRead) {
            reads_.add(ms);
          } else {
            writes_.add(ms);
          }
          if (rq.sync) sync_.add(ms);
        });
  }
  ~LatencyProbe() { handle_.remove(); }
  LatencyProbe(const LatencyProbe&) = delete;
  LatencyProbe& operator=(const LatencyProbe&) = delete;

  const sim::SampleSet& all() const { return all_; }
  const sim::SampleSet& reads() const { return reads_; }
  const sim::SampleSet& writes() const { return writes_; }
  const sim::SampleSet& sync() const { return sync_; }

  /// Convenience percentile accessors (milliseconds).
  double read_p50() const { return reads_.quantile(0.5); }
  double read_p99() const { return reads_.quantile(0.99); }
  double write_p50() const { return writes_.quantile(0.5); }
  double write_p99() const { return writes_.quantile(0.99); }

 private:
  blk::ObserverHandle handle_;
  sim::SampleSet all_;
  sim::SampleSet reads_;
  sim::SampleSet writes_;
  sim::SampleSet sync_;
};

}  // namespace iosim::metrics
