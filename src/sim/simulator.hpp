// iosim: deterministic discrete-event simulator core.
//
// The whole reproduction runs on one single-threaded event loop. Events with
// equal timestamps fire in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run bit-reproducible for a
// given seed — a property the paper's "average of three runs" methodology is
// replaced with (three seeds, averaged).
//
// Hot-path layout (see DESIGN.md §8): the pending set is an indexed 4-ary
// heap of 16-byte entries — (time, packed seq·slot key) — over a slot
// arena. Keys live in the heap array itself, so sift comparisons touch only
// contiguous memory, and the min-of-4 child scan is branchless (cmov, not
// data-dependent branches that mispredict half the time on random keys).
// Per-slot bookkeeping (generation tag + heap position) is a dense 8-byte
// array separate from the fat callback storage, so the sift position
// updates stay in L1; slots recycle through a free list, so a steady-state
// run allocates nothing per event; `EventId`s carry a generation tag, so
// cancel is a bounds check + generation compare plus one indexed heap
// removal — no hash lookup and no tombstone accumulation. Finally, firing
// an event leaves a logical *hole* at the heap root instead of reseating
// the tail immediately: the overwhelmingly common callback pattern is
// "schedule my successor", and that push fills the hole with a single
// root-down sift — fusing the pop's sift with the push's and skipping the
// vector tail churn entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace iosim::sim {

/// Handle to a scheduled event; lets the scheduler of the event cancel it.
/// Packs the event's arena slot (low 32 bits) under its generation tag
/// (high 32 bits): a slot's generation bumps every time it is consumed
/// (fired or cancelled), so a stale handle can never cancel the slot's next
/// tenant. Generations are never 0, so 0 stays an invalid id.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Why the last run() returned.
enum class StopReason : std::uint8_t {
  kDrained = 0,      // event queue exhausted (the normal end of a simulation)
  kEventBudget = 1,  // executed() reached SimBudget::max_events
  kTimeBudget = 2,   // the next event lies beyond SimBudget::max_sim_time
  kAborted = 3,      // SimBudget::abort observed true (external watchdog)
};

const char* to_string(StopReason r);

/// Progress sentinel for the event loop. A livelocked simulation (events
/// forever rescheduling each other without the job finishing) would
/// otherwise spin run() indefinitely; the budget bounds it deterministically
/// — the same seed trips the same budget at the same event count. The
/// `abort` flag is the one channel through which wall-clock watchdogs reach
/// the loop; it is polled every kAbortCheckPeriod events so the owning
/// thread can cooperatively stop a wedged run.
struct SimBudget {
  std::uint64_t max_events = 0;              // 0 = unlimited
  Time max_sim_time = Time::zero();          // zero() = unlimited
  const std::atomic<bool>* abort = nullptr;  // null = never externally aborted
};

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator simr;
///   simr.after(10_ms, [&]{ ... });
///   simr.run();
///
/// Callbacks may schedule further events (including at the current time).
/// Cancellation is eager: the entry leaves the heap and its slot returns to
/// the free list immediately, so cancel-heavy runs (anticipatory idle
/// timeouts) hold no garbage.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (times in the past clamp to
  /// now()). A template so the callable is constructed directly in its
  /// arena slot — no intermediate EventFn object, no extra inline-buffer
  /// copy on the hottest call in the codebase.
  template <class F,
            class = std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>>>
  EventId at(Time t, F&& fn) {
    if (t < now_) t = now_;  // clamp: scheduling in the past runs "now"
    const std::uint32_t slot = alloc_slot();
    fns_[slot] = std::forward<F>(fn);
    heap_push(HeapEntry{t.ns(), (bump_seq() << kSlotBits) | slot});
    return make_id(slot, meta_[slot].gen);
  }

  /// Schedule `fn` to run `delay` after now(). Negative delays clamp to now.
  template <class F,
            class = std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>>>
  EventId after(Time delay, F&& fn) {
    if (delay < Time::zero()) delay = Time::zero();
    return at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or the id is unknown/invalid.
  bool cancel(EventId id);

  /// Run the next pending event, if any. Returns false when the queue is
  /// exhausted.
  bool step() {
    if (hole_) settle();
    if (heap_.empty()) return false;
    fire_top();
    return true;
  }

  /// Run until the event queue is empty — or, with a budget installed, until
  /// the budget is exhausted or the abort flag fires. stop_reason() reports
  /// which; a budget stop leaves the queue intact.
  void run();

  /// Install (or clear, with a default-constructed budget) the progress
  /// sentinel consulted by run().
  void set_budget(const SimBudget& b) { budget_ = b; }
  const SimBudget& budget() const { return budget_; }

  /// Why the most recent run() returned. kDrained until run() is first
  /// called with a budget that trips.
  StopReason stop_reason() const { return stop_reason_; }

  /// Run events with time <= `deadline`; afterwards now() == min(deadline,
  /// time the queue went empty). Events exactly at `deadline` do run.
  void run_until(Time deadline);

  /// Number of pending events (exact: cancelled events leave immediately).
  std::size_t pending() const { return heap_.size() - (hole_ ? 1 : 0); }

  /// Total number of events executed so far — useful for perf accounting
  /// and for asserting a simulation actually did work.
  std::uint64_t executed() const { return executed_; }

  /// Event-slot arena occupancy. `slots` is the arena's high-water mark of
  /// *concurrent* events (never total events scheduled): a run that
  /// schedules and cancels a million timeouts one at a time holds one slot.
  /// The cancel-churn regression test pins exactly that bound.
  struct PoolStats {
    std::size_t slots = 0;          // arena size (live + free)
    std::size_t free_slots = 0;     // slots on the free list
    std::size_t heap_capacity = 0;  // allocated heap entries
  };
  PoolStats pool_stats() const {
    return {meta_.size(), free_count_, heap_.capacity()};
  }

  /// Structural integrity check over the heap + slot arena, for the
  /// invariant auditor (src/check/): every heap entry's slot back-pointer
  /// must name its heap position, generations must never be 0, the free
  /// list must be acyclic and exactly free_count_ long, and every arena
  /// slot must be either scheduled or free (never both, never neither).
  /// O(slots); returns false and fills `why` on the first inconsistency.
  bool audit(std::string* why = nullptr) const;

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  /// The slot index rides in the low bits of the tie-break key, so one
  /// 64-bit compare orders equal-time events AND names the arena slot.
  /// 24 bits = 16.7M concurrent events; alloc_slot() aborts loudly long
  /// before an id could wrap. The sequence number above it gets 40 bits
  /// (~10^12 events per Simulator); at() checks the bound.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

  /// Heap key + slot reference, kept in the heap array itself so sift
  /// comparisons never chase into the arena. 16 bytes — `key` packs
  /// (seq << 24) | slot, and because sequence numbers are unique, comparing
  /// `key` orders equal-time events exactly as comparing seq alone would:
  /// strict FIFO. Halving the entry from the obvious (time, seq, slot)
  /// triple doubles how many heap levels fit per cache line, and the sift
  /// loops carry both words in registers.
  struct HeapEntry {
    std::int64_t t_ns;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint32_t slot() const { return static_cast<std::uint32_t>(key & kSlotMask); }
    bool operator<(const HeapEntry& o) const {
      if (t_ns != o.t_ns) return t_ns < o.t_ns;
      return key < o.key;
    }
  };

  /// Per-slot bookkeeping, 8 bytes so thousands of concurrent events still
  /// fit the sift write-set in L1. `pos` is the slot's heap index while
  /// scheduled and the next-free link while on the free list — the two
  /// states can't be confused because cancel() checks the generation first,
  /// and a matching generation implies the slot is scheduled (generations
  /// bump on free, and the freed generation is never re-issued).
  struct SlotMeta {
    std::uint32_t gen = 1;
    std::uint32_t pos = kNpos;
  };

  static constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// How many executed events lie between two abort-flag polls. The flag is
  /// a relaxed atomic load; polling every event would still be cheap, but
  /// watchdog latency in the hundreds of microseconds is plenty.
  static constexpr std::uint64_t kAbortCheckPeriod = 256;

  /// Pop the heap top, advance the clock, recycle the slot, and invoke the
  /// callback. Leaves the root hole open (see settle()).
  /// Precondition: !hole_ && !heap_.empty().
  void fire_top();

  /// Collapse the root hole a fire_top() left behind: reseat the heap tail
  /// at the root. Every path that reads heap_[0] or entry positions checks
  /// `hole_` first; when the fired callback scheduled a successor (the hot
  /// case) the push already filled the hole and this never runs.
  void settle();

  /// Take a slot off the free list, or grow the arena. Inline: it sits on
  /// the at()/after() fast path.
  std::uint32_t alloc_slot() {
    if (free_head_ != kNpos) {
      const std::uint32_t slot = free_head_;
      free_head_ = meta_[slot].pos;  // pos doubles as the next-free link
      --free_count_;
      return slot;
    }
    if (meta_.size() > kSlotMask) arena_overflow();
    meta_.emplace_back();
    fns_.emplace_back();
    return static_cast<std::uint32_t>(meta_.size() - 1);
  }

  std::uint64_t bump_seq() {
    if (next_seq_ >= kMaxSeq) seq_overflow();
    return next_seq_++;
  }

  [[noreturn]] static void arena_overflow();
  [[noreturn]] static void seq_overflow();

  void free_slot(std::uint32_t slot);
  void heap_push(HeapEntry e);
  /// Remove the entry at heap position `pos` (cancel's path).
  /// Precondition: !hole_.
  void heap_remove_at(std::size_t pos);
  void sift_up(std::size_t pos, HeapEntry e);
  void sift_down(std::size_t pos, HeapEntry e);
  void place(std::size_t pos, HeapEntry e) {
    heap_[pos] = e;
    meta_[e.slot()].pos = static_cast<std::uint32_t>(pos);
  }

  Time now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  SimBudget budget_;
  StopReason stop_reason_ = StopReason::kDrained;
  bool hole_ = false;  // heap_[0] is logically vacant (fired, not reseated)
  std::vector<HeapEntry> heap_;
  std::vector<SlotMeta> meta_;  // hot: touched per sift level
  std::vector<EventFn> fns_;    // cold: touched twice per event
  std::uint32_t free_head_ = kNpos;
  std::size_t free_count_ = 0;
};

}  // namespace iosim::sim
