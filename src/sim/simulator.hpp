// iosim: deterministic discrete-event simulator core.
//
// The whole reproduction runs on one single-threaded event loop. Events with
// equal timestamps fire in scheduling order (a monotonically increasing
// sequence number breaks ties), which makes every run bit-reproducible for a
// given seed — a property the paper's "average of three runs" methodology is
// replaced with (three seeds, averaged).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace iosim::sim {

/// Handle to a scheduled event; lets the scheduler of the event cancel it.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Why the last run() returned.
enum class StopReason : std::uint8_t {
  kDrained = 0,      // event queue exhausted (the normal end of a simulation)
  kEventBudget = 1,  // executed() reached SimBudget::max_events
  kTimeBudget = 2,   // the next event lies beyond SimBudget::max_sim_time
  kAborted = 3,      // SimBudget::abort observed true (external watchdog)
};

const char* to_string(StopReason r);

/// Progress sentinel for the event loop. A livelocked simulation (events
/// forever rescheduling each other without the job finishing) would
/// otherwise spin run() indefinitely; the budget bounds it deterministically
/// — the same seed trips the same budget at the same event count. The
/// `abort` flag is the one channel through which wall-clock watchdogs reach
/// the loop; it is polled every kAbortCheckPeriod events so the owning
/// thread can cooperatively stop a wedged run.
struct SimBudget {
  std::uint64_t max_events = 0;              // 0 = unlimited
  Time max_sim_time = Time::zero();          // zero() = unlimited
  const std::atomic<bool>* abort = nullptr;  // null = never externally aborted
};

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator simr;
///   simr.after(10_ms, [&]{ ... });
///   simr.run();
///
/// Callbacks may schedule further events (including at the current time).
/// Cancellation is lazy: cancelled events stay in the heap and are skipped
/// when popped, so `cancel` is O(1).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (must be >= now()).
  EventId at(Time t, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now(). Negative delays clamp to now.
  EventId after(Time delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or the id is unknown/invalid.
  bool cancel(EventId id);

  /// Run the next pending event, if any. Returns false when the queue is
  /// exhausted (skipping cancelled entries).
  bool step();

  /// Run until the event queue is empty — or, with a budget installed, until
  /// the budget is exhausted or the abort flag fires. stop_reason() reports
  /// which; a budget stop leaves the queue intact.
  void run();

  /// Install (or clear, with a default-constructed budget) the progress
  /// sentinel consulted by run().
  void set_budget(const SimBudget& b) { budget_ = b; }
  const SimBudget& budget() const { return budget_; }

  /// Why the most recent run() returned. kDrained until run() is first
  /// called with a budget that trips.
  StopReason stop_reason() const { return stop_reason_; }

  /// Run events with time <= `deadline`; afterwards now() == min(deadline,
  /// time the queue went empty). Events exactly at `deadline` do run.
  void run_until(Time deadline);

  /// Number of not-yet-cancelled pending events (upper bound: lazily
  /// cancelled events are excluded from the count but may linger in memory).
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// Total number of events executed so far — useful for perf accounting
  /// and for asserting a simulation actually did work.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  /// How many executed events lie between two abort-flag polls. The flag is
  /// a relaxed atomic load; polling every event would still be cheap, but
  /// watchdog latency in the hundreds of microseconds is plenty.
  static constexpr std::uint64_t kAbortCheckPeriod = 256;

  /// Drop cancelled entries off the top of the heap; returns the next live
  /// event, or null when the queue is (effectively) empty.
  const Event* peek();

  Time now_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  SimBudget budget_;
  StopReason stop_reason_ = StopReason::kDrained;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace iosim::sim
