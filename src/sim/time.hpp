// iosim: simulated-time strong type.
//
// All simulated time in the library is carried by `sim::Time`, an integer
// count of nanoseconds since simulation start. Using a strong type (rather
// than a bare int64_t or a floating-point second count) keeps arithmetic
// deterministic across platforms and makes unit mistakes a compile error.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace iosim::sim {

/// A point in simulated time (or a duration between two points), stored as
/// integer nanoseconds. The same type deliberately serves both roles, like
/// `std::chrono` would with a single rep: the simulator never needs the
/// distinction and the code stays terse.
class Time {
 public:
  constexpr Time() = default;

  /// Construct from raw nanoseconds. Prefer the named factories below.
  static constexpr Time from_ns(std::int64_t ns) { return Time{ns}; }
  static constexpr Time from_us(std::int64_t us) { return Time{us * 1000}; }
  static constexpr Time from_ms(std::int64_t ms) { return Time{ms * 1'000'000}; }
  static constexpr Time from_sec(std::int64_t s) { return Time{s * 1'000'000'000}; }

  /// Construct from a floating-point second count (rounded to the nearest
  /// nanosecond). Used at model boundaries where rates are expressed in
  /// seconds; internal arithmetic stays integral.
  static constexpr Time from_sec_f(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time o) const { return Time{ns_ + o.ns_}; }
  constexpr Time operator-(Time o) const { return Time{ns_ - o.ns_}; }
  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

  /// Scale a duration. Rounds toward zero; fine for model constants.
  constexpr Time operator*(double f) const {
    return Time{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }
  constexpr Time operator/(std::int64_t d) const { return Time{ns_ / d}; }

  /// Ratio of two durations as a double (e.g. for progress fractions).
  constexpr double ratio(Time denom) const {
    return denom.ns_ == 0 ? 0.0 : static_cast<double>(ns_) / static_cast<double>(denom.ns_);
  }

  /// Human-readable rendering ("12.345s", "3.2ms", ...). For logs and tables.
  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

inline namespace literals {
constexpr Time operator""_ns(unsigned long long v) { return Time::from_ns(static_cast<std::int64_t>(v)); }
constexpr Time operator""_us(unsigned long long v) { return Time::from_us(static_cast<std::int64_t>(v)); }
constexpr Time operator""_ms(unsigned long long v) { return Time::from_ms(static_cast<std::int64_t>(v)); }
constexpr Time operator""_sec(unsigned long long v) { return Time::from_sec(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace iosim::sim
