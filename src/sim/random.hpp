// iosim: deterministic pseudo-random sources.
//
// We avoid std::mt19937 (its stream is standardized, but distributions are
// not) — all distributions here are hand-rolled over xoshiro256**, so results
// are bit-identical across standard libraries and platforms.
#pragma once

#include <cmath>
#include <cstdint>

namespace iosim::sim {

/// SplitMix64: used to expand a single user seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the public-domain splitmix64 stream).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : x_(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (x_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t x_;
};

/// Mix a base seed and a run index into an independent per-run seed.
///
/// Never derive repeat seeds as `base + index`: with k repeats, base seeds
/// b and b+1 share k-1 of their k run seeds, so two "independent"
/// experiments would mostly re-run the same streams — and averaged results
/// for adjacent base seeds would be correlated by construction. Two
/// splitmix64 finalizer passes (one over the base, one over the mixed base
/// plus the index) give full avalanche in both arguments.
inline constexpr std::uint64_t derive_run_seed(std::uint64_t base, std::uint64_t index) {
  SplitMix64 a(base);
  SplitMix64 b(a.next() + index);
  return b.next();
}

/// xoshiro256** 1.0 (Blackman & Vigna, public domain): the library's only
/// PRNG. Small state, excellent statistical quality, trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection-free Lemire
  /// style reduction; the tiny modulo bias of the simple form is removed.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift with rejection.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Marsaglia polar method (deterministic given stream).
  double normal(double mu = 0.0, double sigma = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mu + sigma * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return mu + sigma * u * f;
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-component RNGs) without
  /// consuming much parent state.
  Rng fork() { return Rng(next_u64() ^ 0xA3EC647659359ACDULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace iosim::sim
