// iosim: small-buffer-optimized type-erased callable for the event hot path.
//
// `std::function` on libstdc++ inlines captures up to 16 bytes; anything
// larger — three words, i.e. most of the simulator's `at()`/`after()` call
// sites once they carry an owner pointer plus a payload or two — costs one
// heap allocation per scheduled event and one free per fire. `SmallFn`
// raises the inline budget to `InlineBytes` (default 48: measured to cover
// every lambda the simulator, block layer, and MapReduce model schedule
// today) so the event loop allocates nothing per event; larger callables
// still work, falling back to the heap exactly like std::function.
//
// Semantics match the std::function subset the simulator used: copyable,
// movable (moved-from is empty), bool-testable, and callable. Each concrete
// callable type gets one static ops table (invoke/copy/move/destroy), so an
// empty or disabled check is a single pointer test and a call is one
// indirect call — same as std::function, minus the allocator traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace iosim::sim {

template <class Sig, std::size_t InlineBytes = 48>
class SmallFn;  // undefined primary; use the R(Args...) specialization

template <class R, class... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  SmallFn(const SmallFn& o) : ops_(o.ops_) {
    if (ops_) {
      if (ops_->trivial) {
        storage_ = o.storage_;
      } else {
        ops_->copy(&storage_, &o.storage_);
      }
    }
  }
  SmallFn(SmallFn&& o) noexcept : ops_(o.ops_) {
    if (ops_) {
      // Trivially-copyable inline callables (the hot-path lambdas: a few
      // pointers and integers) move as one fixed-size copy — no indirect
      // call. The branch is highly predictable: one ops table per callable
      // type, and the event loop schedules the same few types in a loop.
      if (ops_->trivial) {
        storage_ = o.storage_;
      } else {
        ops_->move(&storage_, &o.storage_);
      }
      o.ops_ = nullptr;
    }
  }
  SmallFn& operator=(const SmallFn& o) {
    if (this != &o) {
      reset();
      if (o.ops_) {
        if (o.ops_->trivial) {
          storage_ = o.storage_;
        } else {
          o.ops_->copy(&storage_, &o.storage_);
        }
        ops_ = o.ops_;
      }
    }
    return *this;
  }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_) {
        if (o.ops_->trivial) {
          storage_ = o.storage_;
        } else {
          o.ops_->move(&storage_, &o.storage_);
        }
        ops_ = o.ops_;
        o.ops_ = nullptr;
      }
    }
    return *this;
  }
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn& operator=(F&& f) {
    reset();
    construct<D>(std::forward<F>(f));
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Const like std::function's call operator (the callable itself is
  /// invoked as non-const, matching std::function semantics).
  R operator()(Args... args) const {
    return ops_->invoke(const_cast<Storage*>(&storage_),
                        std::forward<Args>(args)...);
  }

  /// True when the held callable lives in the inline buffer (no heap node).
  /// Diagnostic only — used by tests and the capture-size assertions.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

  /// Whether a callable of type F would be stored inline.
  template <class F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= InlineBytes && alignof(D) <= alignof(Storage) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct alignas(std::max_align_t) Storage {
    unsigned char bytes[InlineBytes];
  };
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*copy)(void*, const void*);
    void (*move)(void*, void*);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool inline_stored;
    /// Inline + trivially copyable + trivially destructible: relocate and
    /// destroy with plain byte copies, skipping the indirect calls.
    bool trivial;
  };

  template <class F>
  struct InlineOps {
    static F* get(void* s) { return std::launder(reinterpret_cast<F*>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*get(s))(std::forward<Args>(args)...);
    }
    static void copy(void* dst, const void* src) {
      ::new (dst) F(*std::launder(reinterpret_cast<const F*>(src)));
    }
    static void move(void* dst, void* src) {
      F* f = get(src);
      ::new (dst) F(std::move(*f));
      f->~F();
    }
    static void destroy(void* s) { get(s)->~F(); }
    static constexpr Ops ops{&invoke, &copy, &move, &destroy, true,
                             std::is_trivially_copyable_v<F> &&
                                 std::is_trivially_destructible_v<F>};
  };

  template <class F>
  struct HeapOps {
    static F*& slot(void* s) { return *std::launder(reinterpret_cast<F**>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*slot(s))(std::forward<Args>(args)...);
    }
    static void copy(void* dst, const void* src) {
      ::new (dst) F*(new F(*const_cast<F* const&>(
          *std::launder(reinterpret_cast<F* const*>(src)))));
    }
    static void move(void* dst, void* src) {
      ::new (dst) F*(slot(src));
      slot(src) = nullptr;  // harmless: the source's ops_ is cleared anyway
    }
    static void destroy(void* s) { delete slot(s); }
    static constexpr Ops ops{&invoke, &copy, &move, &destroy, false, false};
  };

  template <class D, class F>
  void construct(F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void reset() {
    if (ops_) {
      if (!ops_->trivial) ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  Storage storage_;  // uninitialized while ops_ == nullptr
  const Ops* ops_ = nullptr;
};

/// The event-loop callback type: every `Simulator::at()/after()` callback
/// and pooled event node holds one of these.
using EventFn = SmallFn<void()>;

}  // namespace iosim::sim
