// iosim: small online-statistics helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace iosim::sim {

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of raw samples with quantile queries. For the sample counts in
/// this repo (tens of thousands) storing everything is fine and exact.
class SampleSet {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const {
    if (xs_.empty()) return 0.0;
    sort_if_needed();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(xs_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
  }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  /// Empirical CDF evaluated at sorted sample points: pairs (x, F(x)).
  std::vector<std::pair<double, double>> cdf() const {
    sort_if_needed();
    std::vector<std::pair<double, double>> out;
    out.reserve(xs_.size());
    const auto n = static_cast<double>(xs_.size());
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      out.emplace_back(xs_[i], static_cast<double>(i + 1) / n);
    }
    return out;
  }

  const std::vector<double>& raw() const { return xs_; }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Jain's fairness index over a set of allocations: (Σx)² / (n·Σx²).
/// 1.0 = perfectly fair; 1/n = maximally unfair. Used for the Fig. 3 style
/// "CFQ is fairer across VMs" observation.
inline double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double s = 0.0, s2 = 0.0;
  for (double x : xs) {
    s += x;
    s2 += x * x;
  }
  if (s2 == 0.0) return 1.0;
  return (s * s) / (static_cast<double>(xs.size()) * s2);
}

}  // namespace iosim::sim
