// iosim: small online-statistics helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace iosim::sim {

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of raw samples with quantile queries. For the sample counts in
/// this repo (tens of thousands) storing everything is fine and exact.
class SampleSet {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const {
    if (xs_.empty()) return 0.0;
    sort_if_needed();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(xs_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
  }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  /// Empirical CDF evaluated at sorted sample points: pairs (x, F(x)).
  std::vector<std::pair<double, double>> cdf() const {
    sort_if_needed();
    std::vector<std::pair<double, double>> out;
    out.reserve(xs_.size());
    const auto n = static_cast<double>(xs_.size());
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      out.emplace_back(xs_[i], static_cast<double>(i + 1) / n);
    }
    return out;
  }

  const std::vector<double>& raw() const { return xs_; }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Nearest-rank percentile: the value at rank ⌈p·n⌉ of the sorted samples
/// (p in [0,1]; p=0 returns the minimum). Unlike SampleSet::quantile this
/// never interpolates — the result is always an observed sample, which
/// keeps small-n aggregates (the experiment engine's 3-repeat points)
/// honest and byte-stable.
inline double percentile_nearest_rank(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 1.0);
  const auto n = xs.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return xs[rank - 1];
}

/// Two-sided Student-t critical value at 95% confidence for `df` degrees of
/// freedom. Exact table for df <= 30, stepped values to df = 120, then the
/// normal limit 1.960. df = 0 (a single sample) has no finite interval; we
/// return 0 so the caller's half-width collapses to "no interval".
inline double t_critical_95(std::uint64_t df) {
  static constexpr double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df <= 30) return kTable[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

/// Half-width of the 95% confidence interval of the mean from `n` samples
/// with sample standard deviation `stddev`: t_{0.975, n-1} · s / √n.
/// 0 for n < 2 (no dispersion estimate from one sample).
inline double ci95_halfwidth(double stddev, std::uint64_t n) {
  if (n < 2) return 0.0;
  return t_critical_95(n - 1) * stddev / std::sqrt(static_cast<double>(n));
}

/// Batch summary of one metric across the repeats of a scenario point:
/// the aggregate the experiment engine reports per cell of a sweep.
struct Summary {
  std::uint64_t n = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double ci95 = 0.0;  // 95% CI half-width of the mean (Student t)
};

inline Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  RunningStat rs;
  for (double x : xs) rs.add(x);
  s.mean = rs.mean();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile_nearest_rank(xs, 0.50);
  s.p95 = percentile_nearest_rank(xs, 0.95);
  s.ci95 = ci95_halfwidth(rs.stddev(), s.n);
  return s;
}

/// Jain's fairness index over a set of allocations: (Σx)² / (n·Σx²).
/// 1.0 = perfectly fair; 1/n = maximally unfair. Used for the Fig. 3 style
/// "CFQ is fairer across VMs" observation.
inline double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double s = 0.0, s2 = 0.0;
  for (double x : xs) {
    s += x;
    s2 += x * x;
  }
  if (s2 == 0.0) return 1.0;
  return (s * s) / (static_cast<double>(xs.size()) * s2);
}

}  // namespace iosim::sim
