#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace iosim::sim {

EventId Simulator::at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;  // clamp: scheduling in the past runs "now"
  const EventId id = next_id_++;
  heap_.push(Event{t, next_seq_++, id, std::move(fn)});
  return id;
}

EventId Simulator::after(Time delay, std::function<void()> fn) {
  if (delay < Time::zero()) delay = Time::zero();
  return at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  if (id >= next_id_) return false;
  // We cannot know cheaply whether the event already ran; we track only the
  // still-pending set implicitly. Insert into the cancelled set; if the id
  // is not in the heap anymore the entry is harmless and cleaned on pop of a
  // matching id never happening — bounded because ids are unique.
  return cancelled_.insert(id).second;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time deadline) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.t > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace iosim::sim
