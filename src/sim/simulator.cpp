#include "sim/simulator.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace iosim::sim {

// --- slot arena --------------------------------------------------------------

void Simulator::arena_overflow() {
  // 16.7M *concurrent* events — far past any plausible simulation (the
  // arena high-water mark tracks outstanding timers, not total events).
  std::fprintf(stderr, "sim: event arena exceeded %llu concurrent events\n",
               static_cast<unsigned long long>(kSlotMask + 1));
  std::abort();
}

void Simulator::seq_overflow() {
  std::fprintf(stderr, "sim: event sequence space exhausted (%llu events)\n",
               static_cast<unsigned long long>(kMaxSeq));
  std::abort();
}

void Simulator::free_slot(std::uint32_t slot) {
  SlotMeta& m = meta_[slot];
  ++m.gen;
  if (m.gen == 0) m.gen = 1;  // generations are never 0 (0 = invalid id)
  m.pos = free_head_;         // pos doubles as the next-free link
  free_head_ = slot;
  ++free_count_;
}

// --- 4-ary indexed heap ------------------------------------------------------

void Simulator::sift_up(std::size_t pos, HeapEntry e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!(e < heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void Simulator::sift_down(std::size_t pos, HeapEntry e) {
  // One 128-bit unsigned key per entry: (t_ns << 64) | key compares
  // lexicographically exactly like operator< because simulated time is
  // never negative. The min-of-4 child scan then reduces to u128 compares
  // plus mask-arithmetic selects — genuinely branch-free. A branchy scan
  // mispredicts ~half its compares on random keys, and at 4 compares per
  // level that dominated the whole event loop (measured: sift_down was 73%
  // of schedule-fire; ternary "selects" still compiled to branches).
  using u128 = unsigned __int128;
  const auto pack = [](const HeapEntry& he) {
    return (static_cast<u128>(static_cast<std::uint64_t>(he.t_ns)) << 64) | he.key;
  };
  const HeapEntry* h = heap_.data();
  const std::size_t n = heap_.size();
  const u128 ekey = pack(e);
  std::size_t first;
  while ((first = pos * 4 + 1) < n) {
    std::size_t best = first;
    u128 bkey = pack(h[first]);
    const auto consider = [&](std::size_t c) {
      const u128 ckey = pack(h[c]);
      const std::uint64_t m = -static_cast<std::uint64_t>(ckey < bkey);
      const u128 m128 = (static_cast<u128>(m) << 64) | m;
      best = (c & m) | (best & ~m);
      bkey = (ckey & m128) | (bkey & ~m128);
    };
    if (first + 4 <= n) {  // full group of 4 (every level but the frontier)
      consider(first + 1);
      consider(first + 2);
      consider(first + 3);
    } else {
      for (std::size_t c = first + 1; c < n; ++c) consider(c);
    }
    if (bkey >= ekey) break;
    place(pos, HeapEntry{static_cast<std::int64_t>(static_cast<std::uint64_t>(bkey >> 64)),
                         static_cast<std::uint64_t>(bkey)});
    pos = best;
  }
  place(pos, e);
}

void Simulator::heap_push(HeapEntry e) {
  if (hole_) {
    // Fuse with the pop that left the hole: the new entry descends from the
    // root in one sift instead of reseating the tail and then sifting the
    // new entry up from the bottom.
    hole_ = false;
    sift_down(0, e);
    return;
  }
  heap_.emplace_back();  // reserve the slot; sift_up fills it
  sift_up(heap_.size() - 1, e);
}

void Simulator::settle() {
  assert(hole_ && !heap_.empty());
  hole_ = false;
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, tail);
}

void Simulator::heap_remove_at(std::size_t pos) {
  assert(!hole_ && pos < heap_.size());
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail itself
  // Re-seat the tail entry at `pos`: it may need to move either direction.
  if (pos > 0 && tail < heap_[(pos - 1) / 4]) {
    sift_up(pos, tail);
  } else {
    sift_down(pos, tail);
  }
}

// --- public API --------------------------------------------------------------

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= meta_.size()) return false;  // never-issued slot
  // Stale generation: the event already ran or was already cancelled (and
  // the slot possibly re-issued). A matching generation implies the slot is
  // still scheduled — free_slot() bumps the generation before the slot ever
  // reaches the free list, including for the event currently firing.
  if (meta_[slot].gen != gen) return false;
  // Heap positions are only trustworthy with the root hole collapsed (an
  // open hole's ancestor chain would compare against a vacant root).
  if (hole_) settle();
  const std::uint32_t pos = meta_[slot].pos;
  assert(pos != kNpos && pos < heap_.size() && heap_[pos].slot() == slot);
  fns_[slot] = nullptr;  // release captures now, not at slot reuse
  heap_remove_at(pos);
  free_slot(slot);
  return true;
}

void Simulator::fire_top() {
  assert(!hole_);
  const HeapEntry top = heap_[0];
  assert(Time::from_ns(top.t_ns) >= now_);
  const std::uint32_t slot = top.slot();
  // Leave the root vacant: if the callback schedules a successor (the hot
  // pattern) the push fills it in one sift; otherwise the next queue access
  // settles it.
  hole_ = true;
  now_ = Time::from_ns(top.t_ns);
  ++executed_;
  // Detach the callback and recycle the slot *before* invoking: the callback
  // may schedule new events (reusing this very slot, or growing fns_) or
  // cancel this id (which must fail — the event is running).
  EventFn fn = std::move(fns_[slot]);
  free_slot(slot);
  fn();
}

void Simulator::run() {
  stop_reason_ = StopReason::kDrained;
  if (budget_.max_events == 0 && budget_.max_sim_time == Time::zero() &&
      budget_.abort == nullptr) {
    // Unbudgeted (the overwhelmingly common case): keep the drain loop free
    // of per-event budget branches.
    for (;;) {
      if (hole_) settle();
      if (heap_.empty()) return;
      fire_top();
    }
  }
  const std::int64_t deadline_ns = budget_.max_sim_time.ns();
  for (;;) {
    if (hole_) settle();
    if (heap_.empty()) return;
    if (budget_.max_events != 0 && executed_ >= budget_.max_events) {
      stop_reason_ = StopReason::kEventBudget;
      return;
    }
    if (deadline_ns != 0 && heap_[0].t_ns > deadline_ns) {
      stop_reason_ = StopReason::kTimeBudget;
      return;
    }
    if (budget_.abort != nullptr && executed_ % kAbortCheckPeriod == 0 &&
        budget_.abort->load(std::memory_order_relaxed)) {
      stop_reason_ = StopReason::kAborted;
      return;
    }
    fire_top();
  }
}

bool Simulator::audit(std::string* why) const {
  const auto fail = [&](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };
  // 0 = unaccounted, 1 = scheduled (in heap), 2 = free (on free list).
  std::vector<std::uint8_t> state(meta_.size(), 0);

  // Heap side: every entry's slot must exist, carry a live generation, and
  // point back at its own heap position. With the root hole open, heap_[0]
  // is a stale copy of the fired entry (its slot already freed) — skip it.
  for (std::size_t i = hole_ ? 1 : 0; i < heap_.size(); ++i) {
    const std::uint32_t slot = heap_[i].slot();
    if (slot >= meta_.size()) {
      return fail("heap entry " + std::to_string(i) + " names slot " +
                  std::to_string(slot) + " beyond arena size " +
                  std::to_string(meta_.size()));
    }
    if (state[slot] != 0) {
      return fail("slot " + std::to_string(slot) +
                  " appears twice in the heap");
    }
    state[slot] = 1;
    if (meta_[slot].gen == 0) {
      return fail("scheduled slot " + std::to_string(slot) +
                  " has generation 0 (reserved for invalid ids)");
    }
    if (meta_[slot].pos != i) {
      return fail("slot " + std::to_string(slot) + " back-pointer says pos " +
                  std::to_string(meta_[slot].pos) + ", actual heap pos " +
                  std::to_string(i));
    }
  }

  // Free-list side: exactly free_count_ nodes, all in range, no revisits
  // (a cycle or a scheduled slot on the list would revisit / collide).
  std::size_t n_free = 0;
  for (std::uint32_t s = free_head_; s != kNpos; s = meta_[s].pos) {
    if (s >= meta_.size()) {
      return fail("free list links to slot " + std::to_string(s) +
                  " beyond arena size " + std::to_string(meta_.size()));
    }
    if (state[s] != 0) {
      return fail(state[s] == 2
                      ? "free list cycles through slot " + std::to_string(s)
                      : "slot " + std::to_string(s) +
                            " is both scheduled and on the free list");
    }
    state[s] = 2;
    if (meta_[s].gen == 0) {
      return fail("free slot " + std::to_string(s) + " has generation 0");
    }
    if (++n_free > free_count_) {
      return fail("free list longer than free_count_ = " +
                  std::to_string(free_count_));
    }
  }
  if (n_free != free_count_) {
    return fail("free list has " + std::to_string(n_free) +
                " slots, free_count_ says " + std::to_string(free_count_));
  }

  // Conservation: every arena slot is scheduled or free. (The fired slot
  // under an open hole was already freed, so it is accounted as free.)
  for (std::size_t s = 0; s < state.size(); ++s) {
    if (state[s] == 0) {
      return fail("slot " + std::to_string(s) +
                  " is neither scheduled nor on the free list (leaked)");
    }
  }
  return true;
}

void Simulator::run_until(Time deadline) {
  const std::int64_t deadline_ns = deadline.ns();
  for (;;) {
    if (hole_) settle();
    if (heap_.empty() || heap_[0].t_ns > deadline_ns) break;
    fire_top();
  }
  if (now_ < deadline) now_ = deadline;
}

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kDrained: return "drained";
    case StopReason::kEventBudget: return "event-budget";
    case StopReason::kTimeBudget: return "sim-time-budget";
    case StopReason::kAborted: return "aborted";
  }
  return "?";
}

}  // namespace iosim::sim
