#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace iosim::sim {

EventId Simulator::at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;  // clamp: scheduling in the past runs "now"
  const EventId id = next_id_++;
  heap_.push(Event{t, next_seq_++, id, std::move(fn)});
  return id;
}

EventId Simulator::after(Time delay, std::function<void()> fn) {
  if (delay < Time::zero()) delay = Time::zero();
  return at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  if (id >= next_id_) return false;
  // We cannot know cheaply whether the event already ran; we track only the
  // still-pending set implicitly. Insert into the cancelled set; if the id
  // is not in the heap anymore the entry is harmless and cleaned on pop of a
  // matching id never happening — bounded because ids are unique.
  return cancelled_.insert(id).second;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

const Simulator::Event* Simulator::peek() {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    const auto it = cancelled_.find(top.id);
    if (it == cancelled_.end()) return &top;
    cancelled_.erase(it);
    heap_.pop();
  }
  return nullptr;
}

void Simulator::run() {
  stop_reason_ = StopReason::kDrained;
  if (budget_.max_events == 0 && budget_.max_sim_time == Time::zero() &&
      budget_.abort == nullptr) {
    // Unbudgeted (the overwhelmingly common case): keep the drain loop free
    // of per-event budget branches.
    while (step()) {
    }
    return;
  }
  while (const Event* top = peek()) {
    if (budget_.max_events != 0 && executed_ >= budget_.max_events) {
      stop_reason_ = StopReason::kEventBudget;
      return;
    }
    if (budget_.max_sim_time != Time::zero() && top->t > budget_.max_sim_time) {
      stop_reason_ = StopReason::kTimeBudget;
      return;
    }
    if (budget_.abort != nullptr && executed_ % kAbortCheckPeriod == 0 &&
        budget_.abort->load(std::memory_order_relaxed)) {
      stop_reason_ = StopReason::kAborted;
      return;
    }
    step();
  }
}

void Simulator::run_until(Time deadline) {
  while (const Event* top = peek()) {
    if (top->t > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kDrained: return "drained";
    case StopReason::kEventBudget: return "event-budget";
    case StopReason::kTimeBudget: return "sim-time-budget";
    case StopReason::kAborted: return "aborted";
  }
  return "?";
}

}  // namespace iosim::sim
