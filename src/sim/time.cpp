#include "sim/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace iosim::sim {

std::string Time::to_string() const {
  char buf[64];
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", sec());
  } else if (abs_ns >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms());
  } else if (abs_ns >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", us());
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ns", ns_);
  }
  return buf;
}

}  // namespace iosim::sim
