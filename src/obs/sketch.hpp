// iosim: mergeable streaming quantile sketches for latency attribution.
//
// QuantileSketch is a log-linear histogram over non-negative integers
// (latencies in ns): the major bucket is the value's bit width — the same
// power-of-two ladder as trace::Histogram — but each major is split into
// four linear minor buckets, tightening the worst-case quantile error from
// "within a factor of 2" to ~12.5% relative. That is the precision the
// future bandit meta-scheduler needs to rank scheduler pairs by tail
// latency without keeping raw samples.
//
// Determinism rules (DESIGN.md §9): buckets are integer counts, record()
// and merge() are integer-only, sums are exact int64 nanoseconds, and
// quantile() derives from counts with one fixed IEEE-double interpolation —
// two same-seed runs produce bit-identical sketches, and merging per-window
// or per-VM sketches in any grouping (merge is commutative and associative
// over bucket counts) reproduces the sketch of the combined stream exactly.
//
// WindowedSketch layers time decay on top: a ring of frame sketches, each
// covering one simulated-time window; values land in the frame of their
// timestamp and frames older than the ring fall off. snapshot() merges the
// live frames, giving "the last N windows" percentiles — the online signal
// surface (a run-long cumulative sketch cannot show a regression that
// started ten seconds ago).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace iosim::obs {

class QuantileSketch {
 public:
  /// Minor buckets per power-of-two major (2 bits of mantissa kept).
  static constexpr int kMinorBits = 2;
  static constexpr int kMinors = 1 << kMinorBits;
  /// Buckets 0..kMinors-1 are exact small values; above that each major
  /// (bit width 3..63) contributes kMinors buckets.
  static constexpr int kBuckets = (64 - kMinorBits) * kMinors;

  /// Bucket index for a value; negatives clamp to bucket 0.
  static int bucket_of(std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v < 0 ? 0 : v);
    if (u < kMinors) return static_cast<int>(u);  // exact buckets 0..3
    const int major = static_cast<int>(std::bit_width(u));  // >= kMinorBits + 1
    const int shift = major - kMinorBits - 1;
    const int minor = static_cast<int>((u >> shift) & (kMinors - 1));
    return (major - kMinorBits) * kMinors + minor;
  }

  /// Inclusive lower bound of bucket b.
  static std::int64_t bucket_lo(int b) {
    if (b < kMinors) return b;
    const int major = b / kMinors + kMinorBits;
    const int minor = b % kMinors;
    const int shift = major - kMinorBits - 1;
    return (std::int64_t{1} << (major - 1)) +
           (static_cast<std::int64_t>(minor) << shift);
  }

  /// Exclusive upper bound of bucket b.
  static std::int64_t bucket_hi(int b);

  void record(std::int64_t v) {
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
    if (v < 0) v = 0;
    ++n_;
    sum_ += v;
    if (n_ == 1 || v < min_) min_ = v;
    if (n_ == 1 || v > max_) max_ = v;
  }

  /// Fold another sketch in (bucket-wise add). Merging is order-independent:
  /// any grouping of partial sketches reproduces the combined stream's
  /// sketch byte for byte.
  void merge(const QuantileSketch& o);

  void clear();

  std::uint64_t count() const { return n_; }
  /// Exact integer sum of recorded values (ns) — no float accumulation.
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return n_ ? min_ : 0; }
  std::int64_t max() const { return n_ ? max_ : 0; }
  std::uint64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }

  /// Estimated q-quantile (q in [0,1]), rounded to integer ns. Linear
  /// interpolation inside the selected bucket, clamped to observed
  /// min/max — exact for single-bucket distributions, within one minor
  /// bucket (~12.5%) otherwise.
  std::int64_t quantile(double q) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t n_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Ring of per-window QuantileSketches over simulated time. record() lands
/// the value in the frame covering `now` (advancing the ring and clearing
/// expired frames first); snapshot() merges the frames still covered by the
/// ring at `now`. All windowing arithmetic is integer epoch math on
/// sim::Time, so the decayed view is as deterministic as the cumulative one.
class WindowedSketch {
 public:
  WindowedSketch(sim::Time window, int frames)
      : window_ns_(window.ns() > 0 ? window.ns() : 1),
        frames_(static_cast<std::size_t>(frames > 0 ? frames : 1)) {}

  void record(std::int64_t v, sim::Time now) {
    advance(now);
    frames_[static_cast<std::size_t>(
                cur_epoch_ % static_cast<std::int64_t>(frames_.size()))]
        .record(v);
  }

  /// Merge of the frames still live at `now` (advances the ring first).
  QuantileSketch snapshot(sim::Time now) {
    advance(now);
    QuantileSketch out;
    for (const auto& f : frames_) out.merge(f);
    return out;
  }

  std::int64_t window_ns() const { return window_ns_; }
  std::size_t frames() const { return frames_.size(); }

 private:
  void advance(sim::Time now) {
    const std::int64_t epoch = now.ns() / window_ns_;
    if (epoch <= cur_epoch_) return;
    const auto n = static_cast<std::int64_t>(frames_.size());
    if (epoch - cur_epoch_ >= n) {
      for (auto& f : frames_) f.clear();  // idle gap longer than the ring
    } else {
      for (std::int64_t e = cur_epoch_ + 1; e <= epoch; ++e) {
        frames_[static_cast<std::size_t>(e % n)].clear();
      }
    }
    cur_epoch_ = epoch;
  }

  std::int64_t window_ns_;
  std::vector<QuantileSketch> frames_;
  std::int64_t cur_epoch_ = 0;
};

}  // namespace iosim::obs
