#include "obs/attribution.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "trace/registry.hpp"
#include "trace/trace.hpp"

namespace iosim::obs {

namespace {

/// Lane spans from the stamp array with carry-forward: a stage that was
/// never stamped (e.g. a request completed while a record was mid-path
/// during teardown) contributes a zero-width lane, so the lanes always sum
/// exactly to the total.
void lanes_of(const AttrRecord& r, std::int64_t out[kNumLanes]) {
  std::int64_t prev = r.stamp[0];
  for (int s = 1; s < kNumStages; ++s) {
    const std::int64_t cur = r.stamp[s] >= 0 ? r.stamp[s] : prev;
    out[s - 1] = cur > prev ? cur - prev : 0;
    prev = cur;
  }
  out[static_cast<int>(Lane::kTotal)] =
      prev > r.stamp[0] ? prev - r.stamp[0] : 0;
}

}  // namespace

Attribution::Attribution(AttributionConfig cfg) : cfg_(cfg) {
  arena_.reserve(256);
}

AttrRecord* Attribution::record_of(AttrHandle h) {
  if (h == kNoAttr || h > arena_.size()) return nullptr;
  AttrRecord& r = arena_[h - 1];
  return r.in_use ? &r : nullptr;
}

Attribution::KeyStats& Attribution::stats_of(const AttrKey& key) {
  const std::uint64_t packed = key.pack();
  if (auto it = key_idx_.find(packed); it != key_idx_.end()) return keys_[it->second];
  key_idx_.emplace(packed, keys_.size());
  keys_.emplace_back(key, cfg_.window, cfg_.frames);
  return keys_.back();
}

AttrHandle Attribution::on_submit(int host, int vm, bool is_write, bool sync,
                                  std::int64_t lba, std::int64_t sectors,
                                  sim::Time now, std::uint64_t ctx) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  AttrRecord& r = arena_[idx];
  for (auto& s : r.stamp) s = -1;
  r.stamp[static_cast<int>(Stage::kSubmit)] = now.ns();
  r.lba = lba;
  r.sectors = sectors;
  r.key.host = static_cast<std::uint16_t>(host);
  r.key.vm = static_cast<std::uint16_t>(vm);
  r.key.dir = is_write ? 1 : 0;
  r.key.sync = sync ? 1 : 0;
  r.key.phase = cur_phase_;
  r.key.job = job_of_ctx(ctx);
  r.reads_ahead = 0;
  r.writes_ahead = 0;
  r.dom0_in_flight = 0;
  r.in_use = true;
  ++records_created_;
  last_activity_ = now;
  return idx + 1;
}

void Attribution::on_guest_dispatch(AttrHandle h, sim::Time now) {
  if (AttrRecord* r = record_of(h)) {
    r->stamp[static_cast<int>(Stage::kGuestDispatch)] = now.ns();
    last_activity_ = now;
  }
}

void Attribution::on_dom0_arrive(AttrHandle h, sim::Time now, std::size_t reads_ahead,
                                 std::size_t writes_ahead, std::size_t in_flight) {
  AttrRecord* r = record_of(h);
  if (r == nullptr) return;
  auto& stamp = r->stamp[static_cast<int>(Stage::kDom0Arrive)];
  if (stamp >= 0) return;  // first segment wins the stamp and the snapshot
  stamp = now.ns();
  r->reads_ahead = static_cast<std::uint32_t>(reads_ahead);
  r->writes_ahead = static_cast<std::uint32_t>(writes_ahead);
  r->dom0_in_flight = static_cast<std::uint32_t>(in_flight);
  last_activity_ = now;
}

void Attribution::on_dom0_dispatch(AttrHandle h, sim::Time now) {
  if (AttrRecord* r = record_of(h)) {
    auto& stamp = r->stamp[static_cast<int>(Stage::kDom0Dispatch)];
    if (stamp < 0) stamp = now.ns();  // first dispatch wins
    last_activity_ = now;
  }
}

void Attribution::on_dom0_complete(AttrHandle h, sim::Time now) {
  if (AttrRecord* r = record_of(h)) {
    // Last completion wins: a guest request spread over several Dom0
    // requests is in service until its final segment finishes.
    r->stamp[static_cast<int>(Stage::kDom0Complete)] = now.ns();
    last_activity_ = now;
  }
}

void Attribution::on_complete(AttrHandle h, sim::Time now) {
  AttrRecord* r = record_of(h);
  if (r == nullptr) return;
  r->stamp[static_cast<int>(Stage::kComplete)] = now.ns();
  last_activity_ = now;
  if (auto* ck = check::auditor()) {
    ck->on_stamps(r->key.host, r->key.vm, r->stamp, kNumStages, now.ns());
  }

  std::int64_t lanes[kNumLanes];
  lanes_of(*r, lanes);
  const std::int64_t total = lanes[static_cast<int>(Lane::kTotal)];

  KeyStats& ks = stats_of(r->key);
  // Stall check against the key's history *before* this request joins it.
  const QuantileSketch& totals = ks.lanes[static_cast<int>(Lane::kTotal)];
  bool stalled = false;
  std::int64_t threshold = 0;
  if (totals.count() >= cfg_.stall.min_samples) {
    const auto p99 = static_cast<double>(totals.quantile(0.99));
    threshold = std::max(cfg_.stall.floor.ns(),
                         static_cast<std::int64_t>(p99 * cfg_.stall.factor));
    stalled = total > threshold;
  }

  for (int l = 0; l < kNumLanes; ++l) ks.lanes[l].record(lanes[l]);
  ks.windowed.record(total, now);
  ++records_completed_;

  if (stalled) {
    ++stalls_total_;
    if (stall_log_.size() < cfg_.stall.max_log) {
      StallEvent ev;
      ev.key = r->key;
      ev.lba = r->lba;
      ev.sectors = r->sectors;
      ev.submit_ns = r->stamp[static_cast<int>(Stage::kSubmit)];
      ev.total_ns = total;
      ev.threshold_ns = threshold;
      for (int l = 0; l < kNumLanes; ++l) ev.lane_ns[l] = lanes[l];
      ev.reads_ahead = r->reads_ahead;
      ev.writes_ahead = r->writes_ahead;
      ev.dom0_in_flight = r->dom0_in_flight;
      stall_log_.push_back(ev);
    }
    if (auto* tr = trace::tracer()) {
      std::string path = "obs/host" + std::to_string(r->key.host) + "/vm" +
                         std::to_string(r->key.vm);
      if (r->key.job >= 0) path += "/job" + std::to_string(r->key.job);
      const auto track = tr->track(path);
      // The stalled span itself, with the Dom0 queue it arrived behind —
      // pinned, so stalls survive the bio flood that caused them.
      tr->complete(track, tr->ids.io_stall, tr->ids.cat_obs,
                   sim::Time::from_ns(r->stamp[static_cast<int>(Stage::kSubmit)]),
                   now, tr->ids.lba, r->lba, tr->ids.writes_ahead,
                   r->writes_ahead, tr->ids.reads_ahead, r->reads_ahead);
      tr->instant(track, tr->ids.io_stall_wait, tr->ids.cat_obs, now,
                  tr->ids.elv_wait_ns, lanes[static_cast<int>(Lane::kElvWait)],
                  tr->ids.service_ns, lanes[static_cast<int>(Lane::kService)],
                  tr->ids.total_ns, total);
    }
  }

  // Recycle: every Dom0 segment of this request completed before the guest
  // request did, so no live reference to the handle remains.
  r->in_use = false;
  free_.push_back(h - 1);
}

std::string Attribution::key_name(const AttrKey& k) {
  std::string s = "host" + std::to_string(k.host) + ".vm" + std::to_string(k.vm);
  if (k.job >= 0) s += ".job" + std::to_string(k.job);
  s += k.dir ? ".write" : ".read";
  s += k.sync ? ".sync" : ".async";
  s += ".ph" + std::to_string(k.phase);
  return s;
}

void Attribution::publish(trace::Registry& reg) {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    KeyStats& ks = keys_[i];
    const std::string prefix = "obs." + key_name(ks.key) + ".";
    for (int l = 0; l < kNumLanes; ++l) {
      const QuantileSketch& sk = ks.lanes[l];
      const std::string lane_prefix = prefix + lane_name(static_cast<Lane>(l)) + ".";
      reg.gauge(lane_prefix + "count").set(static_cast<double>(sk.count()));
      reg.gauge(lane_prefix + "sum_ns").set(static_cast<double>(sk.sum()));
      reg.gauge(lane_prefix + "p50_ns").set(static_cast<double>(sk.quantile(0.5)));
      reg.gauge(lane_prefix + "p95_ns").set(static_cast<double>(sk.quantile(0.95)));
      reg.gauge(lane_prefix + "p99_ns").set(static_cast<double>(sk.quantile(0.99)));
    }
    const QuantileSketch win = ks.windowed.snapshot(last_activity_);
    reg.gauge(prefix + "win.count").set(static_cast<double>(win.count()));
    reg.gauge(prefix + "win.p99_ns").set(static_cast<double>(win.quantile(0.99)));
  }
  reg.gauge("obs.stalls").set(static_cast<double>(stalls_total_));
  reg.gauge("obs.records_completed").set(static_cast<double>(records_completed_));
  reg.gauge("obs.records_live").set(static_cast<double>(records_live()));
}

void Attribution::export_to_trace(trace::Tracer& tr) {
  const sim::Time at = last_activity_;
  tr.instant(tr.track("obs"), tr.ids.obs_summary, tr.ids.cat_obs, at,
             tr.ids.count, static_cast<std::int64_t>(records_completed_),
             tr.ids.in_flight, static_cast<std::int64_t>(records_live()),
             tr.ids.stalls, static_cast<std::int64_t>(stalls_total_));
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    KeyStats& ks = keys_[i];
    const AttrKey& k = ks.key;
    std::string path =
        "obs/host" + std::to_string(k.host) + "/vm" + std::to_string(k.vm);
    if (k.job >= 0) path += "/job" + std::to_string(k.job);
    path += (k.dir ? "/write" : "/read");
    path += (k.sync ? "/sync" : "/async");
    path += "/ph" + std::to_string(k.phase);
    const auto track = tr.track(path);
    for (int l = 0; l < kNumLanes; ++l) {
      const QuantileSketch& sk = ks.lanes[l];
      // Two pinned instants per lane: counts then percentiles (three args
      // each — the Event arg limit). iosim-report joins them by name.
      tr.instant(track, tr.ids.obs_lane[l], tr.ids.cat_obs, at, tr.ids.count,
                 static_cast<std::int64_t>(sk.count()), tr.ids.sum_ns, sk.sum(),
                 tr.ids.max_ns, sk.max());
      tr.instant(track, tr.ids.obs_lane[l], tr.ids.cat_obs, at, tr.ids.p50_ns,
                 sk.quantile(0.5), tr.ids.p95_ns, sk.quantile(0.95), tr.ids.p99_ns,
                 sk.quantile(0.99));
    }
    const QuantileSketch win = ks.windowed.snapshot(at);
    tr.instant(track, tr.ids.obs_total_win, tr.ids.cat_obs, at, tr.ids.count,
               static_cast<std::int64_t>(win.count()), tr.ids.p95_ns,
               win.quantile(0.95), tr.ids.p99_ns, win.quantile(0.99));
  }
}

}  // namespace iosim::obs
