#include "obs/sketch.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace iosim::obs {

std::int64_t QuantileSketch::bucket_hi(int b) {
  if (b + 1 >= kBuckets) return std::numeric_limits<std::int64_t>::max();
  return bucket_lo(b + 1);
}

void QuantileSketch::merge(const QuantileSketch& o) {
  if (o.n_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] += o.buckets_[static_cast<std::size_t>(b)];
  }
  if (n_ == 0 || o.min_ < min_) min_ = o.min_;
  if (n_ == 0 || o.max_ > max_) max_ = o.max_;
  n_ += o.n_;
  sum_ += o.sum_;
}

void QuantileSketch::clear() {
  std::memset(buckets_, 0, sizeof buckets_);
  n_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::int64_t QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0;
  if (min_ == max_) return min_;  // degenerate: exact
  q = std::clamp(q, 0.0, 1.0);
  // Same rank-walk as trace::Histogram::quantile, over the finer buckets.
  const double rank = q * static_cast<double>(n_ - 1) + 1.0;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    if (rank <= static_cast<double>(cum + c)) {
      const double frac = (rank - static_cast<double>(cum)) / static_cast<double>(c);
      const auto lo = static_cast<double>(std::max(bucket_lo(b), min_));
      const auto hi = static_cast<double>(std::min(bucket_hi(b), max_ + 1));
      return static_cast<std::int64_t>(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0));
    }
    cum += c;
  }
  return max_;
}

}  // namespace iosim::obs
