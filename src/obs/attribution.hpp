// iosim: end-to-end request-path latency attribution.
//
// Attribution owns the per-request stamp records (obs/attr.hpp) and the
// per-key streaming sketches they fold into on completion. Block layers on
// the DomU->Dom0 path call the on_*() stamping hooks; the hooks take plain
// scalars so obs/ never depends on blk/ (blk depends on obs). Like the
// tracer and the metrics registry, the layer is reached through a
// thread-local pointer that is null by default: with no AttributionSession
// installed every instrumentation site costs one hinted pointer check, and
// bare layers (LayerRole::kNone) skip even that.
//
// On every guest-request completion:
//  * the stage stamps become a five-lane waterfall (plus total) and fold
//    into the cumulative per-lane sketches of the request's (host, vm, dir,
//    sync, phase) key, and into the key's windowed total-latency sketch;
//  * the stall detector compares the total against a percentile-based
//    threshold and, on a hit, logs the request with the Dom0 queue snapshot
//    captured when it arrived there ("who was ahead") and emits pinned
//    trace events.
//
// Determinism: all state advances only from stamping calls, which happen in
// simulator event order; keys are kept in first-touch order; sketches are
// integer-only. Same seed => byte-identical publish/export output.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/attr.hpp"
#include "obs/sketch.hpp"
#include "sim/time.hpp"
#include "trace/hint.hpp"

namespace iosim::trace {
class Tracer;
class Registry;
}  // namespace iosim::trace

namespace iosim::obs {

struct StallConfig {
  /// A request stalls when total > max(floor, factor * p99(key total)).
  double factor = 3.0;
  sim::Time floor = sim::Time::from_ms(50);
  /// Completions a key must have seen before its detector arms (an early
  /// p99 over a handful of samples is noise, not a threshold).
  std::uint64_t min_samples = 64;
  /// Bound on the in-memory stall log; later stalls are counted but not
  /// logged (stalls_total() keeps the true count).
  std::size_t max_log = 256;
};

struct AttributionConfig {
  StallConfig stall;
  /// Windowed total-latency sketch: `frames` windows of `window` each.
  sim::Time window = sim::Time::from_sec(1);
  int frames = 8;
};

class Attribution {
 public:
  explicit Attribution(AttributionConfig cfg = {});
  Attribution(const Attribution&) = delete;
  Attribution& operator=(const Attribution&) = delete;

  // -- stamping hooks (called by blk::BlockLayer / virt::BlkfrontRing) --

  /// Guest layer created a new request from a fresh bio: allocate a record.
  /// `ctx` is the bio's scheduling context id; a ctx inside a per-job window
  /// (attr.hpp job_of_ctx) keys the record to that stream job, any other
  /// value (including the default 0) keys it to the shared namespace.
  AttrHandle on_submit(int host, int vm, bool is_write, bool sync,
                       std::int64_t lba, std::int64_t sectors, sim::Time now,
                       std::uint64_t ctx = 0);
  /// Guest elevator dispatched the request into the ring.
  void on_guest_dispatch(AttrHandle h, sim::Time now);
  /// A ring segment of the request reached the Dom0 elevator. First arrival
  /// wins the stamp and the queue snapshot (counts exclude this segment).
  void on_dom0_arrive(AttrHandle h, sim::Time now, std::size_t reads_ahead,
                      std::size_t writes_ahead, std::size_t in_flight);
  /// A Dom0 request carrying this record was dispatched (first wins).
  void on_dom0_dispatch(AttrHandle h, sim::Time now);
  /// A Dom0 request carrying this record completed (last wins).
  void on_dom0_complete(AttrHandle h, sim::Time now);
  /// The guest request completed: fold the waterfall, run the stall
  /// detector, recycle the record.
  void on_complete(AttrHandle h, sim::Time now);

  /// MapReduce phase for keying new records (cluster::run_job wires this to
  /// the job's phase transitions when a session is installed).
  void set_phase(int phase) {
    cur_phase_ = static_cast<std::uint8_t>(phase < 0 ? 0 : (phase > 63 ? 63 : phase));
  }
  int phase() const { return cur_phase_; }

  // -- results --

  std::size_t n_keys() const { return keys_.size(); }
  const AttrKey& key_at(std::size_t i) const { return keys_[i].key; }
  /// Cumulative per-lane sketch of key i (ns).
  const QuantileSketch& lane(std::size_t i, Lane l) const {
    return keys_[i].lanes[static_cast<int>(l)];
  }
  /// Decaying total-latency view of key i at the last stamped time.
  QuantileSketch windowed_total(std::size_t i) {
    return keys_[i].windowed.snapshot(last_activity_);
  }

  const std::vector<StallEvent>& stalls() const { return stall_log_; }
  std::uint64_t stalls_total() const { return stalls_total_; }

  std::uint64_t records_created() const { return records_created_; }
  std::uint64_t records_completed() const { return records_completed_; }
  /// Records still in flight (created - completed).
  std::uint64_t records_live() const { return records_created_ - records_completed_; }
  sim::Time last_activity() const { return last_activity_; }

  /// "host0.vm1.read.sync.ph0" — registry metric prefix / report row label.
  /// Keys of a stream job append ".jobN"; shared-namespace keys (job = -1)
  /// keep the historical five-part name.
  static std::string key_name(const AttrKey& k);

  /// Publish per-key per-lane count/sum/percentile gauges (plus the
  /// windowed total p99 and the stall counter) into `reg`, in first-touch
  /// key order.
  void publish(trace::Registry& reg);

  /// Emit the sketch summaries as pinned instants on per-key "obs/..."
  /// tracks at last_activity() time — the machine-readable surface
  /// iosim-report consumes from the trace JSON.
  void export_to_trace(trace::Tracer& tr);

  const AttributionConfig& config() const { return cfg_; }

 private:
  struct KeyStats {
    AttrKey key;
    QuantileSketch lanes[kNumLanes];
    WindowedSketch windowed;
    explicit KeyStats(const AttrKey& k, sim::Time window, int frames)
        : key(k), windowed(window, frames) {}
  };

  AttrRecord* record_of(AttrHandle h);
  KeyStats& stats_of(const AttrKey& key);

  AttributionConfig cfg_;
  std::vector<AttrRecord> arena_;
  std::vector<std::uint32_t> free_;  // recycled arena indices
  std::vector<KeyStats> keys_;       // first-touch order
  std::unordered_map<std::uint64_t, std::size_t> key_idx_;  // pack() -> index
  std::vector<StallEvent> stall_log_;
  std::uint64_t stalls_total_ = 0;
  std::uint64_t records_created_ = 0;
  std::uint64_t records_completed_ = 0;
  std::uint8_t cur_phase_ = 0;
  sim::Time last_activity_;
};

/// Per-thread attribution layer; null (default) = attribution off. Inline
/// thread_local + branch hint for the same hot-path and sweep-worker
/// isolation reasons as trace::tracer() — see trace/trace.hpp.
namespace detail {
inline thread_local Attribution* g_attribution = nullptr;
}
inline Attribution* attribution() {
  Attribution* a = detail::g_attribution;
  return trace::detail::unlikely_on(a != nullptr) ? a : nullptr;
}
inline void set_attribution(Attribution* a) { detail::g_attribution = a; }

/// RAII install/uninstall, mirroring TraceSession / MetricsSession.
class AttributionSession {
 public:
  explicit AttributionSession(AttributionConfig cfg = {})
      : attribution_(cfg), prev_(obs::attribution()) {
    set_attribution(&attribution_);
  }
  ~AttributionSession() { set_attribution(prev_); }
  AttributionSession(const AttributionSession&) = delete;
  AttributionSession& operator=(const AttributionSession&) = delete;

  Attribution& attribution() { return attribution_; }

 private:
  Attribution attribution_;
  Attribution* prev_;
};

}  // namespace iosim::obs
