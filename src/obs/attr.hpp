// iosim: request-path attribution vocabulary — the stage model.
//
// A guest request's life crosses two block layers and the split-driver
// ring; the attribution layer stamps it at six points:
//
//   kSubmit        bio enters the guest elevator (DomU submit)
//   kGuestDispatch guest elevator hands the request to the blkfront ring
//   kDom0Arrive    first ring segment reaches the Dom0 elevator
//   kDom0Dispatch  Dom0 elevator hands the (merged) request to the disk
//   kDom0Complete  last Dom0 segment carrying this request completes
//   kComplete      the guest request completes back in the DomU
//
// Adjacent stamps bound the five lanes of the latency waterfall; their sum
// is exactly the end-to-end latency (kTotal). A guest request's segments
// may merge with other requests' segments inside the Dom0 elevator, so the
// Dom0 stamps use first-arrival / first-dispatch / last-completion
// semantics — the same request-level view blktrace gives on real kernels.
//
// This header has no dependencies beyond <cstdint> on purpose: blk/ and
// virt/ include it to carry roles and handles without obs/ ever needing to
// include them back.
#pragma once

#include <cstdint>

namespace iosim::obs {

/// Opaque handle to an in-flight attribution record. 0 = none; bios and
/// requests carry it as plain data (see blk::Bio::attr).
using AttrHandle = std::uint32_t;
inline constexpr AttrHandle kNoAttr = 0;

/// Which rung of the split-driver path a BlockLayer occupies. Layers
/// outside the DomU->Dom0 path (bare layers in unit tests and benches)
/// keep kNone and skip even the attribution pointer check.
enum class LayerRole : std::uint8_t { kNone = 0, kGuest = 1, kDom0 = 2 };

/// Stream-admitted jobs issue all task I/O from a private ctx window of
/// width kJobCtxWindow starting at kJobCtxWindow * (job + 1); ids below the
/// first window are the shared/legacy namespace (single-job runs, per-VM
/// server daemons). Mirrors mapred::ctx::kJobWindowBase — obs/ cannot
/// include mapred/, so cluster_env.hpp static_asserts the two stay equal.
inline constexpr std::uint64_t kJobCtxWindow = 1'000'000;

/// Job id encoded in a bio ctx, or -1 for the shared/legacy namespace.
inline std::int32_t job_of_ctx(std::uint64_t ctx) {
  if (ctx < kJobCtxWindow) return -1;
  return static_cast<std::int32_t>(ctx / kJobCtxWindow) - 1;
}

enum class Stage : std::uint8_t {
  kSubmit = 0,
  kGuestDispatch = 1,
  kDom0Arrive = 2,
  kDom0Dispatch = 3,
  kDom0Complete = 4,
  kComplete = 5,
};
inline constexpr int kNumStages = 6;

/// The waterfall lanes: lane i spans stage i -> stage i+1; kTotal spans
/// kSubmit -> kComplete and equals the sum of the other five.
enum class Lane : std::uint8_t {
  kGuestQueue = 0,  // guest elevator residence
  kRingWait = 1,    // blkfront ring crossing + slot wait
  kElvWait = 2,     // Dom0 elevator residence — the paper's battleground
  kService = 3,     // device service (Dom0 dispatch -> last completion)
  kReturn = 4,      // completion path back through the ring
  kTotal = 5,
};
inline constexpr int kNumLanes = 6;

/// Short machine names ("elv_wait"), used in registry metric names and
/// report tables.
inline const char* lane_name(Lane l) {
  switch (l) {
    case Lane::kGuestQueue: return "guest_queue";
    case Lane::kRingWait: return "ring_wait";
    case Lane::kElvWait: return "elv_wait";
    case Lane::kService: return "service";
    case Lane::kReturn: return "ret";
    case Lane::kTotal: return "total";
  }
  return "?";
}

/// Sketch key: every completed request folds into the sketches of exactly
/// one key. phase is the MapReduce phase index at *submit* time (0 = map,
/// 1 = shuffle, 2 = reduce tail; 0 outside a phase-tracked job). job is the
/// stream job id the submitting ctx belongs to (-1 = shared/legacy ctx), so
/// multi-tenant runs get per-job waterfalls and stall attribution while
/// single-job runs keep their historical keys byte-for-byte.
struct AttrKey {
  std::uint16_t host = 0;
  std::uint16_t vm = 0;
  std::uint8_t dir = 0;   // 0 = read, 1 = write
  std::uint8_t sync = 0;  // 0 = async, 1 = sync
  std::uint8_t phase = 0;
  std::int32_t job = -1;

  /// Dense packing for map lookup: low word is the classic 32-bit key
  /// (host 12b | vm 12b | dir | sync | phase 6b), high word is job + 1 so
  /// the shared namespace packs to the historical value.
  std::uint64_t pack() const {
    const std::uint32_t low =
        (static_cast<std::uint32_t>(host & 0xFFFu) << 20) |
        (static_cast<std::uint32_t>(vm & 0xFFFu) << 8) |
        (static_cast<std::uint32_t>(dir & 1u) << 7) |
        (static_cast<std::uint32_t>(sync & 1u) << 6) |
        static_cast<std::uint32_t>(phase & 0x3Fu);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job + 1)) << 32) |
           low;
  }
};

/// One in-flight request's stamp record. Lives in the Attribution arena
/// from guest submit to guest completion, then recycles.
struct AttrRecord {
  /// Stage timestamps in ns; -1 = not stamped yet.
  std::int64_t stamp[kNumStages];
  std::int64_t lba = 0;
  std::int64_t sectors = 0;
  AttrKey key;
  /// Dom0 elevator snapshot taken at kDom0Arrive ("who was ahead").
  std::uint32_t reads_ahead = 0;
  std::uint32_t writes_ahead = 0;
  std::uint32_t dom0_in_flight = 0;
  bool in_use = false;
};

/// One stall-detector hit: a completed request whose end-to-end latency
/// exceeded the percentile-based threshold of its key.
struct StallEvent {
  AttrKey key;
  std::int64_t lba = 0;
  std::int64_t sectors = 0;
  std::int64_t submit_ns = 0;
  std::int64_t total_ns = 0;
  std::int64_t threshold_ns = 0;
  /// Per-lane breakdown of the stalled request (kTotal included).
  std::int64_t lane_ns[kNumLanes] = {0, 0, 0, 0, 0, 0};
  /// Dom0 queue at the moment the request arrived there.
  std::uint32_t reads_ahead = 0;
  std::uint32_t writes_ahead = 0;
  std::uint32_t dom0_in_flight = 0;
};

}  // namespace iosim::obs
