#include "fault/fault_injector.hpp"

#include "trace/trace.hpp"

namespace iosim::fault {

namespace {
void trace_fault_instant(trace::Str trace::Tracer::CommonIds::* what,
                         sim::Time t, std::int64_t a0 = 0, std::int64_t a1 = 0) {
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("faults"), tr->ids.*what, tr->ids.cat_fault, t,
                tr->ids.index, a0, tr->ids.value, a1);
  }
}
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simr, FaultPlan plan,
                             std::uint64_t seed, int n_vms, int vms_per_host)
    : simr_(simr),
      plan_(std::move(plan)),
      n_vms_(n_vms),
      vms_per_host_(vms_per_host),
      rng_(seed) {
  schedule_outage_events();
  // Arm markers: one pinned instant per spec at its window start, so a trace
  // shows when each fault came alive even after ring wrap.
  for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
    const FaultSpec& s = plan_.specs[i];
    simr_.at(s.from, [this, i] {
      trace_fault_instant(&trace::Tracer::CommonIds::fault, simr_.now(),
                          static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(plan_.specs[i].kind));
    });
  }
}

void FaultInjector::schedule_outage_events() {
  auto schedule_down = [this](sim::Time at, int vm) {
    simr_.at(at, [this, vm] {
      trace_fault_instant(&trace::Tracer::CommonIds::vm_down, simr_.now(), vm);
      // Index loop: a callback may register further listeners.
      for (std::size_t i = 0; i < down_cbs_.size(); ++i) {
        down_cbs_[i](vm, simr_.now());
      }
    });
  };
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind == FaultKind::kVmOutage || s.kind == FaultKind::kVmCrash) {
      schedule_down(s.from, s.vm);
    } else if (s.kind == FaultKind::kHostCrash && vms_per_host_ > 0) {
      // One death event per resident VM, in VM-id order, all at the same
      // instant — listeners see a host loss as a burst of VM losses.
      for (int vm = 0; vm < n_vms_; ++vm) {
        if (vm / vms_per_host_ == s.host) schedule_down(s.from, vm);
      }
    }
    // Crashes are permanent: no up event.
    if (s.kind == FaultKind::kVmOutage && s.until < sim::Time::max()) {
      const int vm = s.vm;
      simr_.at(s.until, [this, vm] {
        trace_fault_instant(&trace::Tracer::CommonIds::vm_up, simr_.now(), vm);
        for (std::size_t i = 0; i < up_cbs_.size(); ++i) {
          up_cbs_[i](vm, simr_.now());
        }
      });
    }
  }
}

sim::Time FaultInjector::inflate_service(int host, sim::Time svc) const {
  const sim::Time now = simr_.now();
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind != FaultKind::kFailSlow) continue;
    if (s.host != -1 && s.host != host) continue;
    if (!s.active_at(now)) continue;
    svc = svc * s.factor;
  }
  return svc;
}

bool FaultInjector::io_should_fail(int host, disk::Lba lba,
                                   std::int64_t sectors) {
  const sim::Time now = simr_.now();
  bool fail = false;
  for (const FaultSpec& s : plan_.specs) {
    if (s.host != -1 && s.host != host) continue;
    if (!s.active_at(now)) continue;
    if (s.kind == FaultKind::kLatentSector) {
      if (lba < s.lba_end && lba + sectors > s.lba_begin) {
        ++counters_.lse_hits;
        fail = true;
      }
    } else if (s.kind == FaultKind::kTransientError) {
      // Draw even if an earlier spec already failed this I/O: the RNG
      // consumption per I/O depends only on which windows are active, never
      // on other specs' outcomes, which keeps overlapping plans replayable.
      if (rng_.chance(s.probability)) {
        ++counters_.io_errors;
        fail = true;
      }
    }
  }
  return fail;
}

bool FaultInjector::crash_covers(const FaultSpec& s, int vm) const {
  if (s.kind == FaultKind::kVmCrash) return s.vm == vm;
  if (s.kind == FaultKind::kHostCrash) {
    return vms_per_host_ > 0 && vm / vms_per_host_ == s.host;
  }
  return false;
}

bool FaultInjector::vm_down(int vm) const {
  const sim::Time now = simr_.now();
  for (const FaultSpec& s : plan_.specs) {
    if (s.kind == FaultKind::kVmOutage && s.vm == vm && s.active_at(now)) {
      return true;
    }
    // Crash windows never close (until == Time::max()).
    if (crash_covers(s, vm) && s.active_at(now)) return true;
  }
  return false;
}

bool FaultInjector::vm_crashed(int vm) const {
  const sim::Time now = simr_.now();
  for (const FaultSpec& s : plan_.specs) {
    if (crash_covers(s, vm) && now >= s.from) return true;
  }
  return false;
}

FaultInjector::SwitchVerdict FaultInjector::switch_command() {
  const sim::Time now = simr_.now();
  SwitchVerdict v;
  for (const FaultSpec& s : plan_.specs) {
    if (!s.active_at(now)) continue;
    if (s.kind == FaultKind::kSwitchFail) {
      if (rng_.chance(s.probability)) v.ok = false;
    } else if (s.kind == FaultKind::kSwitchDelay) {
      v.delay += s.delay;
    }
  }
  if (!v.ok) {
    ++counters_.switch_failures;
    trace_fault_instant(&trace::Tracer::CommonIds::switch_fail, now);
  } else if (v.delay > sim::Time::zero()) {
    ++counters_.switches_delayed;
  }
  return v;
}

}  // namespace iosim::fault
