// iosim: the runtime half of fault injection.
//
// A FaultInjector replays a FaultPlan against one simulator. Consumers poll
// it at their natural decision points — the disk asks before servicing a
// request, the cluster asks before applying an elevator switch, the job asks
// whether a VM is up — so the injector itself stays passive except for VM
// outage begin/end events, which it schedules so registered listeners (the
// JobTracker) hear about them.
//
// Determinism: all randomness comes from a private xoshiro RNG seeded at
// construction, and draws happen only while a probabilistic spec's window is
// active. An empty plan consumes no randomness and changes no behavior, so
// fault-free runs stay bit-identical to a build without the injector wired.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace iosim::fault {

class FaultInjector {
 public:
  /// The topology pair (n_vms, vms_per_host) lets kHostCrash expand into
  /// per-VM death events; both default to 0 for callers that never feed the
  /// injector host-level specs (unit tests driving disk faults directly).
  FaultInjector(sim::Simulator& simr, FaultPlan plan, std::uint64_t seed,
                int n_vms = 0, int vms_per_host = 0);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return !plan_.specs.empty(); }

  // ---- disk level (polled by DiskDevice) ----

  /// Service time after fail-slow inflation for `host`'s disk; active
  /// fail-slow specs compound multiplicatively.
  sim::Time inflate_service(int host, sim::Time svc) const;

  /// Decide whether the I/O at [lba, lba+sectors) on `host` fails — latent
  /// sector ranges always, transient specs with their probability (one RNG
  /// draw per active spec). The failed command still occupies the disk for
  /// its full service time (the drive retries internally, then gives up).
  bool io_should_fail(int host, disk::Lba lba, std::int64_t sectors);

  // ---- VM outages ----

  /// True while any outage window covering `vm` is active, or once a
  /// vmcrash/hostcrash covering it has fired (crashes never end).
  bool vm_down(int vm) const;

  /// True once a permanent crash (kVmCrash, or kHostCrash on the VM's host)
  /// has fired for `vm`. Crashed VMs never restart; membership uses this to
  /// skip probe/unblacklist paths that assume the VM can come back.
  bool vm_crashed(int vm) const;

  /// Listeners for outage begin/end; fired from scheduled events at the
  /// window edges. Register before the simulation runs.
  using VmCallback = std::function<void(int vm, sim::Time now)>;
  void on_vm_down(VmCallback cb) { down_cbs_.push_back(std::move(cb)); }
  void on_vm_up(VmCallback cb) { up_cbs_.push_back(std::move(cb)); }

  // ---- elevator switch commands ----

  struct SwitchVerdict {
    bool ok = true;
    sim::Time delay = sim::Time::zero();  // extra latency before it lands
  };

  /// Adjudicate one cluster-wide switch command at the current sim time.
  SwitchVerdict switch_command();

  struct Counters {
    std::uint64_t io_errors = 0;        // transient failures injected
    std::uint64_t lse_hits = 0;         // latent-sector range hits
    std::uint64_t switch_failures = 0;  // failed switch commands
    std::uint64_t switches_delayed = 0; // delayed switch commands
  };
  const Counters& counters() const { return counters_; }

 private:
  void schedule_outage_events();

  /// Whether `spec` kills `vm` — kVmCrash by VM id, kHostCrash by the VM's
  /// host (needs vms_per_host_; without topology host specs match nothing).
  bool crash_covers(const FaultSpec& spec, int vm) const;

  sim::Simulator& simr_;
  FaultPlan plan_;
  int n_vms_ = 0;
  int vms_per_host_ = 0;
  sim::Rng rng_;
  Counters counters_;
  std::vector<VmCallback> down_cbs_;
  std::vector<VmCallback> up_cbs_;
};

}  // namespace iosim::fault
