#include "fault/fault_plan.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace iosim::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kTransientError: return "transient";
    case FaultKind::kLatentSector: return "lse";
    case FaultKind::kFailSlow: return "failslow";
    case FaultKind::kVmOutage: return "vmdown";
    case FaultKind::kSwitchFail: return "switchfail";
    case FaultKind::kSwitchDelay: return "switchdelay";
    case FaultKind::kVmCrash: return "vmcrash";
    case FaultKind::kHostCrash: return "hostcrash";
  }
  return "?";
}

namespace {

void set_error(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}

bool parse_double(std::string_view v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const std::string s(v);
  *out = std::strtod(s.c_str(), &end);
  // Reject nan/inf here, once for every numeric key: NaN slips through
  // range checks (every comparison is false) and non-finite seconds would
  // hit undefined float→int64 conversion in Time::from_sec_f.
  return end == s.c_str() + s.size() && std::isfinite(*out);
}

bool parse_int(std::string_view v, long long* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const std::string s(v);
  errno = 0;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size() && errno != ERANGE;
}

bool parse_seconds(std::string_view v, sim::Time* out) {
  double secs = 0.0;
  // Time stores int64 nanoseconds, which overflows past ~9.22e9 s; beyond
  // that from_sec_f would be UB. 9.2e9 s ≈ 291 years keeps room for large
  // "never fires" sentinels (tests use from=9e9) while staying in range.
  if (!parse_double(v, &secs) || !(secs >= 0.0) || secs > 9.2e9) return false;
  *out = sim::Time::from_sec_f(secs);
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<FaultSpec> FaultPlan::parse_spec(std::string_view text,
                                               std::string* error) {
  text = trim(text);
  const auto colon = text.find(':');
  const std::string_view kind_name = trim(text.substr(0, colon));

  FaultSpec s;
  if (kind_name == "transient") {
    s.kind = FaultKind::kTransientError;
  } else if (kind_name == "lse") {
    s.kind = FaultKind::kLatentSector;
  } else if (kind_name == "failslow") {
    s.kind = FaultKind::kFailSlow;
  } else if (kind_name == "vmdown") {
    s.kind = FaultKind::kVmOutage;
  } else if (kind_name == "vmcrash") {
    s.kind = FaultKind::kVmCrash;
  } else if (kind_name == "hostcrash") {
    s.kind = FaultKind::kHostCrash;
  } else if (kind_name == "switchfail") {
    s.kind = FaultKind::kSwitchFail;
  } else if (kind_name == "switchdelay") {
    s.kind = FaultKind::kSwitchDelay;
  } else {
    set_error(error, "unknown fault kind '" + std::string(kind_name) + "'");
    return std::nullopt;
  }

  bool saw_lba = false, saw_p = false, saw_factor = false, saw_delay = false;
  std::vector<std::string_view> seen_keys;
  std::string_view rest = colon == std::string_view::npos ? std::string_view{}
                                                          : text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view kv = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos) {
      set_error(error, "expected key=value, got '" + std::string(kv) + "'");
      return std::nullopt;
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);

    // Silent last-wins on a repeated key hides typos in long plans; reject,
    // matching the ScenarioSpec grammar's all-or-nothing contract.
    for (const auto k : seen_keys) {
      if (k == key) {
        set_error(error, "duplicate key '" + std::string(key) + "' in '" +
                             std::string(text) + "'");
        return std::nullopt;
      }
    }
    seen_keys.push_back(key);

    auto bad_value = [&] {
      set_error(error, "bad value for '" + std::string(key) + "': '" +
                           std::string(val) + "'");
      return std::nullopt;
    };
    const bool disk_fault = s.kind == FaultKind::kTransientError ||
                            s.kind == FaultKind::kLatentSector ||
                            s.kind == FaultKind::kFailSlow;

    if (key == "from") {
      if (!parse_seconds(val, &s.from)) return bad_value();
    } else if (key == "until") {
      if (s.kind == FaultKind::kVmCrash || s.kind == FaultKind::kHostCrash) {
        set_error(error, "key 'until' does not apply to '" +
                             std::string(kind_name) +
                             "' (crashes are permanent, nothing restarts)");
        return std::nullopt;
      }
      if (!parse_seconds(val, &s.until)) return bad_value();
    } else if (key == "host" && disk_fault) {
      long long h = 0;
      if (!parse_int(val, &h) || h < -1) return bad_value();
      s.host = static_cast<int>(h);
    } else if (key == "host" && s.kind == FaultKind::kHostCrash) {
      long long h = 0;
      if (!parse_int(val, &h) || h < 0) return bad_value();
      s.host = static_cast<int>(h);
    } else if (key == "vm" && (s.kind == FaultKind::kVmOutage ||
                               s.kind == FaultKind::kVmCrash)) {
      long long v = 0;
      if (!parse_int(val, &v) || v < 0) return bad_value();
      s.vm = static_cast<int>(v);
    } else if (key == "p" && (s.kind == FaultKind::kTransientError ||
                              s.kind == FaultKind::kSwitchFail)) {
      if (!parse_double(val, &s.probability) || s.probability < 0.0 ||
          s.probability > 1.0) {
        return bad_value();
      }
      saw_p = true;
    } else if (key == "factor" && s.kind == FaultKind::kFailSlow) {
      if (!parse_double(val, &s.factor) || s.factor < 1.0) return bad_value();
      saw_factor = true;
    } else if (key == "delay" && s.kind == FaultKind::kSwitchDelay) {
      if (!parse_seconds(val, &s.delay)) return bad_value();
      saw_delay = true;
    } else if (key == "lba" && s.kind == FaultKind::kLatentSector) {
      const auto dash = val.find('-');
      long long a = 0, b = 0;
      if (dash == std::string_view::npos || !parse_int(val.substr(0, dash), &a) ||
          !parse_int(val.substr(dash + 1), &b) || a < 0 || b <= a) {
        return bad_value();
      }
      s.lba_begin = a;
      s.lba_end = b;
      saw_lba = true;
    } else {
      set_error(error, "key '" + std::string(key) + "' does not apply to '" +
                           std::string(kind_name) + "'");
      return std::nullopt;
    }
  }

  if (s.until <= s.from) {
    set_error(error, "empty window: until <= from in '" + std::string(text) + "'");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kLatentSector && !saw_lba) {
    set_error(error, "lse requires lba=A-B");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kFailSlow && !saw_factor) {
    set_error(error, "failslow requires factor=F");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kSwitchDelay && !saw_delay) {
    set_error(error, "switchdelay requires delay=S");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kVmOutage && s.vm < 0) {
    set_error(error, "vmdown requires vm=V");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kVmCrash && s.vm < 0) {
    set_error(error, "vmcrash requires vm=V");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kHostCrash && s.host < 0) {
    set_error(error, "hostcrash requires host=H");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kTransientError && !saw_p) {
    set_error(error, "transient requires p=P");
    return std::nullopt;
  }
  if (s.kind == FaultKind::kSwitchFail && !saw_p) {
    set_error(error, "switchfail requires p=P");
    return std::nullopt;
  }
  return s;
}

std::optional<FaultPlan> FaultPlan::parse(std::string_view text,
                                          std::string* error) {
  FaultPlan plan;
  std::vector<int> spec_line;  // line each accepted spec came from
  int line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const auto nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{} : text.substr(nl + 1);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty()) {
      const auto sep = line.find(';');
      std::string_view item = trim(line.substr(0, sep));
      line = sep == std::string_view::npos ? std::string_view{} : line.substr(sep + 1);
      if (item.empty()) continue;
      std::string err;
      auto spec = parse_spec(item, &err);
      if (!spec.has_value()) {
        set_error(error, "line " + std::to_string(line_no) + ": " + err);
        return std::nullopt;
      }
      // Overlapping latent-sector ranges on hosts that can collide (equal,
      // or either side targets every host) would make error attribution
      // ambiguous and almost always indicate a typo'd plan — reject even if
      // the time windows differ (windows can drift during tuning; the LBA
      // map should stay disjoint regardless).
      if (spec->kind == FaultKind::kLatentSector) {
        for (std::size_t i = 0; i < plan.specs.size(); ++i) {
          const FaultSpec& prev = plan.specs[i];
          if (prev.kind != FaultKind::kLatentSector) continue;
          const bool hosts_collide =
              prev.host == spec->host || prev.host == -1 || spec->host == -1;
          const bool lba_overlap =
              spec->lba_begin < prev.lba_end && prev.lba_begin < spec->lba_end;
          if (hosts_collide && lba_overlap) {
            set_error(error,
                      "line " + std::to_string(line_no) + ": lse lba=" +
                          std::to_string(spec->lba_begin) + "-" +
                          std::to_string(spec->lba_end) +
                          " overlaps the lse from line " +
                          std::to_string(spec_line[i]) + " (lba=" +
                          std::to_string(prev.lba_begin) + "-" +
                          std::to_string(prev.lba_end) + ")");
            return std::nullopt;
          }
        }
      }
      // A vmdown with a finite `until` is a restart order for that VM. A
      // vmcrash whose death instant is at or before the restart makes the
      // order unfulfillable — crashed hardware does not come back — and a
      // plan that says both is a typo. Checked in both directions, since
      // the two specs can appear in either order.
      for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        const FaultSpec& prev = plan.specs[i];
        const FaultSpec* outage = nullptr;
        const FaultSpec* crash = nullptr;
        if (spec->kind == FaultKind::kVmOutage &&
            prev.kind == FaultKind::kVmCrash) {
          outage = &*spec;
          crash = &prev;
        } else if (spec->kind == FaultKind::kVmCrash &&
                   prev.kind == FaultKind::kVmOutage) {
          outage = &prev;
          crash = &*spec;
        } else {
          continue;
        }
        if (outage->vm != crash->vm) continue;
        if (outage->until == sim::Time::max()) continue;  // no restart ordered
        if (crash->from > outage->until) continue;        // crash comes later
        const int outage_line = (outage == &prev) ? spec_line[i] : line_no;
        const int crash_line = (crash == &prev) ? spec_line[i] : line_no;
        set_error(error, "line " + std::to_string(outage_line) +
                             ": vmdown:vm=" + std::to_string(outage->vm) +
                             " schedules a restart at until=" +
                             std::to_string(outage->until.sec()) +
                             "s, but the vmcrash from line " +
                             std::to_string(crash_line) +
                             " has already killed vm" +
                             std::to_string(crash->vm) + " for good");
        return std::nullopt;
      }
      plan.specs.push_back(*spec);
      spec_line.push_back(line_no);
    }
  }
  return plan;
}

std::string FaultSpec::to_string() const {
  char buf[192];
  std::string out = fault::to_string(kind);
  switch (kind) {
    case FaultKind::kTransientError:
      std::snprintf(buf, sizeof buf, ":host=%d,p=%g", host, probability);
      break;
    case FaultKind::kLatentSector:
      std::snprintf(buf, sizeof buf, ":host=%d,lba=%lld-%lld", host,
                    static_cast<long long>(lba_begin),
                    static_cast<long long>(lba_end));
      break;
    case FaultKind::kFailSlow:
      std::snprintf(buf, sizeof buf, ":host=%d,factor=%g", host, factor);
      break;
    case FaultKind::kVmOutage:
    case FaultKind::kVmCrash:
      std::snprintf(buf, sizeof buf, ":vm=%d", vm);
      break;
    case FaultKind::kHostCrash:
      std::snprintf(buf, sizeof buf, ":host=%d", host);
      break;
    case FaultKind::kSwitchFail:
      std::snprintf(buf, sizeof buf, ":p=%g", probability);
      break;
    case FaultKind::kSwitchDelay:
      std::snprintf(buf, sizeof buf, ":delay=%g", delay.sec());
      break;
  }
  out += buf;
  if (from > sim::Time::zero()) {
    std::snprintf(buf, sizeof buf, ",from=%g", from.sec());
    out += buf;
  }
  if (until < sim::Time::max()) {
    std::snprintf(buf, sizeof buf, ",until=%g", until.sec());
    out += buf;
  }
  return out;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& s : specs) {
    if (!out.empty()) out += ';';
    out += s.to_string();
  }
  return out;
}

}  // namespace iosim::fault
