// iosim: declarative fault plans.
//
// A FaultPlan is a list of timed / probabilistic fault specifications that a
// FaultInjector replays against the simulator clock. Plans are plain data:
// they can be built in code, parsed from the `--fault` command-line syntax,
// or loaded from a file, and the same plan + the same seed always reproduces
// the same faults (the injector draws from its own deterministic RNG).
//
// Spec grammar (one spec = `kind:key=value,key=value,...`; a plan is a list
// of specs separated by `;` or newlines, `#` starts a comment):
//
//   transient:host=H,p=P[,from=S,until=S]   probabilistic bio errors on
//                                           host H's disk (H=-1: all hosts)
//   lse:host=H,lba=A-B[,from=S,until=S]     latent sector errors: any I/O
//                                           touching [A,B) fails
//   failslow:host=H,factor=F[,from=S,until=S]
//                                           service times multiplied by F
//   vmdown:vm=V,from=S,until=S              whole-DomU outage (global VM id)
//   vmcrash:vm=V[,from=S]                   permanent VM death — no restart,
//                                           so `until` does not apply
//   hostcrash:host=H[,from=S]               permanent death of every VM on
//                                           physical host H (no restart)
//   switchfail:p=P[,from=S,until=S]         elevator-switch commands fail
//   switchdelay:delay=S[,from=S,until=S]    switch commands land S s late
//
// Times are (fractional) seconds of simulated time; windows are [from,
// until). `until` defaults to forever, `from` to 0. Crash kinds are
// permanent by construction; a plan that schedules a vmdown restart (a
// finite `until`) for a VM that a vmcrash has already killed by that time
// is rejected at parse with both line numbers — restarts cannot resurrect
// crashed hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "disk/disk_model.hpp"
#include "sim/time.hpp"

namespace iosim::fault {

enum class FaultKind : std::uint8_t {
  kTransientError = 0,  // probabilistic bio failure at the disk
  kLatentSector = 1,    // persistent error on an LBA range
  kFailSlow = 2,        // service-time inflation (fail-slow disk)
  kVmOutage = 3,        // DomU down for a window, then restarted
  kSwitchFail = 4,      // elevator-switch command fails outright
  kSwitchDelay = 5,     // elevator-switch command lands late
  kVmCrash = 6,         // permanent DomU death (never restarts)
  kHostCrash = 7,       // permanent death of every VM on one host
};

const char* to_string(FaultKind k);

/// One fault specification. Fields without meaning for a kind keep their
/// defaults (the parser rejects keys that do not apply).
struct FaultSpec {
  FaultKind kind = FaultKind::kTransientError;
  int host = -1;  // disk faults / kHostCrash: target host; -1 = every host
  int vm = -1;    // kVmOutage / kVmCrash: global VM id
  sim::Time from = sim::Time::zero();    // window start (inclusive)
  sim::Time until = sim::Time::max();    // window end (exclusive)
  double probability = 1.0;              // kTransientError / kSwitchFail
  double factor = 1.0;                   // kFailSlow multiplier (> 1)
  disk::Lba lba_begin = 0;               // kLatentSector range [begin, end)
  disk::Lba lba_end = 0;
  sim::Time delay = sim::Time::zero();   // kSwitchDelay latency

  bool active_at(sim::Time t) const { return t >= from && t < until; }
  std::string to_string() const;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }

  /// Parse one spec. On failure returns nullopt and, when `error` is
  /// non-null, stores a one-line diagnostic naming the offending token.
  static std::optional<FaultSpec> parse_spec(std::string_view text,
                                             std::string* error = nullptr);

  /// Parse a `;`/newline-separated spec list (empty entries and `#` comment
  /// lines are skipped). All-or-nothing: any malformed spec fails the whole
  /// parse.
  static std::optional<FaultPlan> parse(std::string_view text,
                                        std::string* error = nullptr);

  std::string to_string() const;
};

}  // namespace iosim::fault
