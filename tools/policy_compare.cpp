// policy_compare — CI acceptance gate over a policy-comparison sweep.
//
//   policy_compare BENCH.json [--tol-offline 1.10] [--beat-static 1.0]
//
// Reads one sweep report in the standard BENCH format (the iosim-sweep
// engine) whose points carry a `meta=` axis, groups the points into
// families (identical label up to the meta= suffix — in fig7_online.spec a
// family is one stream workload mix), and asserts, per family:
//
//   offline gate   mean(seconds | ucb) <= tol_offline * best offline mean
//                  — the online bandit must land within the committed
//                  tolerance of Algorithm 1's profiled schedule, without
//                  any profiling pass of its own.
//   static gate    mean(seconds | ucb) < beat_static * worst static mean
//                  — on a family the profiler never saw (the spec's
//                  wc-nocombiner stream), learning live must beat pinning
//                  the wrong pair. Applied to every family that has a
//                  static point; the unseen family is where it bites.
//
// The sweep must use seed_mode=repeat (paired seeds): each family's points
// then replay identical arrival processes, so the ratios measure the
// policy, not the draw — and because every run is seed-deterministic, a
// gate can only start failing when the code under it changes.
//
// egreedy points are reported for context but never gate: the committed
// acceptance bar tracks one canonical online policy.
//
// Exit codes: 0 every gate passed; 1 a gate failed; 2 usage / unreadable /
// no gateable family found (a sweep with the axis missing must not turn
// the job green).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/json_parse.hpp"

namespace {

struct FamilyStats {
  std::optional<double> ucb;
  std::optional<double> egreedy;
  std::optional<double> none;
  std::vector<std::pair<std::string, double>> offline;  // meta text, mean
  std::vector<std::pair<std::string, double>> statics;  // meta text, mean
};

int usage() {
  std::fprintf(stderr,
               "usage: policy_compare BENCH.json "
               "[--tol-offline RATIO] [--beat-static RATIO]\n");
  return 2;
}

bool parse_ratio(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0' && *out > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  double tol_offline = 1.10;
  double beat_static = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol-offline") == 0 && i + 1 < argc) {
      if (!parse_ratio(argv[++i], &tol_offline)) return usage();
    } else if (std::strcmp(argv[i], "--beat-static") == 0 && i + 1 < argc) {
      if (!parse_ratio(argv[++i], &beat_static)) return usage();
    } else if (!path) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (!path) return usage();

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "policy_compare: cannot open %s\n", path);
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  const auto doc = iosim::exp::json_parse(ss.str(), &err);
  if (!doc) {
    std::fprintf(stderr, "policy_compare: %s: %s\n", path, err.c_str());
    return 2;
  }
  const auto* points = doc->find("points");
  if (!points || points->kind != iosim::exp::JsonValue::Kind::kArray) {
    std::fprintf(stderr, "policy_compare: %s: no \"points\" array\n", path);
    return 2;
  }

  std::map<std::string, FamilyStats> families;
  for (const auto& p : points->arr) {
    if (p.kind != iosim::exp::JsonValue::Kind::kObject) continue;
    const auto* label = p.find("label");
    const auto* metrics = p.find("metrics");
    if (!label || label->kind != iosim::exp::JsonValue::Kind::kString) continue;
    if (!metrics || metrics->kind != iosim::exp::JsonValue::Kind::kObject) continue;
    const auto* seconds = metrics->find("seconds");
    if (!seconds || seconds->kind != iosim::exp::JsonValue::Kind::kObject) continue;
    const auto* mean = seconds->find("mean");
    if (!mean || mean->kind != iosim::exp::JsonValue::Kind::kNumber) continue;

    // Family key = label minus the trailing " meta=..."; meta text = the
    // suffix ("none" when absent — the boot-pair baseline point).
    std::string family = label->str;
    std::string meta = "none";
    if (const auto pos = family.rfind(" meta="); pos != std::string::npos) {
      meta = family.substr(pos + 6);
      family.resize(pos);
    }
    FamilyStats& fs = families[family];
    if (meta == "none") {
      fs.none = mean->num;
    } else if (meta.rfind("policy=ucb", 0) == 0) {
      fs.ucb = mean->num;
    } else if (meta.rfind("policy=egreedy", 0) == 0) {
      fs.egreedy = mean->num;
    } else if (meta.rfind("policy=offline", 0) == 0) {
      fs.offline.emplace_back(meta, mean->num);
    } else if (meta.rfind("policy=static", 0) == 0) {
      fs.statics.emplace_back(meta, mean->num);
    }
  }

  std::printf("policy_compare: %s  (tol-offline %.2f, beat-static %.2f)\n",
              path, tol_offline, beat_static);
  int failures = 0;
  int gates = 0;
  for (const auto& [family, fs] : families) {
    std::printf("family: %s\n", family.c_str());
    if (fs.none) std::printf("  %-34s %8.1fs\n", "none (boot pair)", *fs.none);
    for (const auto& [m, v] : fs.statics) std::printf("  %-34s %8.1fs\n", m.c_str(), v);
    for (const auto& [m, v] : fs.offline) std::printf("  %-34s %8.1fs\n", m.c_str(), v);
    if (fs.ucb) std::printf("  %-34s %8.1fs\n", "policy=ucb", *fs.ucb);
    if (fs.egreedy)
      std::printf("  %-34s %8.1fs  (info, not gated)\n", "policy=egreedy", *fs.egreedy);
    if (!fs.ucb) {
      std::printf("  -> no ucb point; nothing to gate\n");
      continue;
    }
    if (!fs.offline.empty()) {
      double best = fs.offline.front().second;
      for (const auto& [m, v] : fs.offline) best = std::min(best, v);
      const double bound = tol_offline * best;
      const bool ok = *fs.ucb <= bound;
      ++gates;
      if (!ok) ++failures;
      std::printf("  -> offline gate: ucb %.1fs %s %.1fs (= %.2f x best offline %.1fs)  %s\n",
                  *fs.ucb, ok ? "<=" : ">", bound, tol_offline, best,
                  ok ? "ok" : "FAIL");
    }
    if (!fs.statics.empty()) {
      double worst = fs.statics.front().second;
      for (const auto& [m, v] : fs.statics) worst = std::max(worst, v);
      const double bound = beat_static * worst;
      const bool ok = *fs.ucb < bound;
      ++gates;
      if (!ok) ++failures;
      std::printf("  -> static gate:  ucb %.1fs %s %.1fs (= %.2f x worst static %.1fs)  %s\n",
                  *fs.ucb, ok ? "<" : ">=", bound, beat_static, worst,
                  ok ? "ok" : "FAIL");
    }
  }

  if (gates == 0) {
    std::fprintf(stderr,
                 "policy_compare: no family had both a ucb point and a "
                 "baseline to gate against\n");
    return 2;
  }
  if (failures > 0) {
    std::printf("policy_compare: FAIL — %d of %d gates failed\n", failures, gates);
    return 1;
  }
  std::printf("policy_compare: PASS — %d gates\n", gates);
  return 0;
}
