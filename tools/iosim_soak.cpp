// iosim-soak: deterministic chaos soak for the simulator's invariants.
//
// Expands one master seed into N randomized configurations — scenario
// (workload, hosts, VMs, data size, Dom0/DomU scheduler pair) crossed with
// a generated fault plan — and runs every configuration TWICE with the
// invariant auditor armed (check::AuditorSession, record mode):
//
//   * any invariant violation in either run fails the configuration;
//   * the two runs' trace digests (FNV-1a over Tracer::to_json) must be
//     bit-identical — a mismatch means hidden nondeterminism;
//   * infra failures (budget stop, harness exception) fail it too. A job
//     that merely *fails* because of injected faults is a legitimate
//     simulated outcome and does not.
//
// On failure the configuration is greedily minimized (drop fault specs,
// shrink the cluster and data size) while the failure still reproduces,
// and the minimized configuration is written as a self-contained scenario
// spec file under --out-dir. Reproduce later with:
//
//   iosim-soak --repro soak-repro/repro-<seed>-<index>.txt
//
// Everything derives from --seed via sim::derive_run_seed, so a soak run
// is replayable byte-for-byte on any machine.
//
// Exit codes: 0 = all configurations clean, 1 = failures found (repro
// files written), 2 = usage error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "cli_util.hpp"
#include "exp/artifact.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "obs/attribution.hpp"
#include "sim/random.hpp"
#include "trace/trace.hpp"

namespace {

using iosim::exp::ScenarioSpec;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--runs N] [--out-dir DIR] [--quiet]\n"
               "       %s --repro FILE\n"
               "\n"
               "  --seed N      master seed; every configuration derives from it (default 1)\n"
               "  --runs N      number of randomized configurations (default 200)\n"
               "  --out-dir DIR where minimized repro spec files are written (default soak-repro)\n"
               "  --repro FILE  re-run one previously emitted repro spec file\n"
               "  --quiet       only print failures and the final summary\n",
               argv0, argv0);
  return 2;
}

// ---- configuration generation ---------------------------------------------

/// Generator parameters for one soak configuration. Kept structured (rather
/// than as text) so the minimizer can shrink fields and regenerate the spec.
struct SoakConfig {
  std::uint64_t base_seed = 1;
  int hosts = 1;
  int vms = 1;
  long long mb = 8;
  std::string pair = "cc";
  std::string workload = "sort";
  std::vector<std::string> fault_specs;  // joined with ';' into the fault axis
  std::string stream;         // multi-job stream axis; empty = single-job run
  std::string stream_policy;  // fifo/fair/capacity when stream is set
};

std::string fault_text(const SoakConfig& c) {
  std::string out;
  for (const auto& s : c.fault_specs) {
    if (!out.empty()) out += ';';
    out += s;
  }
  return out.empty() ? "none" : out;
}

std::string spec_text(const SoakConfig& c, const std::string& name) {
  std::ostringstream ss;
  ss << "name=" << name << "\n"
     << "mode=run\n"
     << "base_seed=" << c.base_seed << "\n"
     << "repeats=1\n"
     << "pair=" << c.pair << "\n"
     << "workload=" << c.workload << "\n"
     << "hosts=" << c.hosts << "\n"
     << "vms=" << c.vms << "\n"
     << "mb=" << c.mb << "\n"
     // Livelock backstop: generous enough that no legitimate configuration
     // in the ranges below comes near it, so tripping it is a failure.
     << "max_events=200000000\n"
     << "fault=" << fault_text(c) << "\n";
  if (!c.stream.empty()) {
    ss << "stream=" << c.stream << "\n"
       << "stream_policy=" << c.stream_policy << "\n";
  }
  return ss.str();
}

SoakConfig generate(std::uint64_t master, std::uint64_t index) {
  iosim::sim::Rng rng(iosim::sim::derive_run_seed(master, index));
  SoakConfig c;
  c.base_seed = rng.next_u64();
  c.hosts = static_cast<int>(rng.range(1, 2));
  c.vms = static_cast<int>(rng.range(1, 3));
  c.mb = rng.range(8, 32);
  static const char kSched[] = {'n', 'd', 'a', 'c'};
  c.pair = {kSched[rng.below(4)], kSched[rng.below(4)]};
  static const char* kWorkloads[] = {"sort", "wordcount", "wc-nocombiner"};
  c.workload = kWorkloads[rng.below(3)];

  char buf[160];
  if (rng.chance(0.5)) {  // low-rate transient errors (retries, not death)
    std::snprintf(buf, sizeof buf, "transient:host=%d,p=%.4f",
                  static_cast<int>(rng.range(-1, c.hosts - 1)),
                  0.001 + 0.019 * rng.uniform());
    c.fault_specs.push_back(buf);
  }
  if (rng.chance(0.4)) {  // disjoint latent-sector ranges (parser requires it)
    std::uint64_t lba = rng.below(1024);
    const int n = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t len = 16 + rng.below(512);
      std::snprintf(buf, sizeof buf, "lse:host=%d,lba=%llu-%llu",
                    static_cast<int>(rng.range(-1, c.hosts - 1)),
                    static_cast<unsigned long long>(lba),
                    static_cast<unsigned long long>(lba + len));
      c.fault_specs.push_back(buf);
      lba += len + 1 + rng.below(64);
    }
  }
  if (rng.chance(0.3)) {  // windowed slowdown
    const double from = rng.uniform(0.0, 4.0);
    std::snprintf(buf, sizeof buf, "failslow:host=%d,factor=%.2f,from=%.3f,until=%.3f",
                  static_cast<int>(rng.range(-1, c.hosts - 1)),
                  rng.uniform(1.5, 8.0), from, from + rng.uniform(0.5, 4.0));
    c.fault_specs.push_back(buf);
  }
  // Permanent crashes and bounded outages are mutually exclusive so the
  // generator can never emit a vmdown whose restart targets a VM an earlier
  // crash already took (the parser rejects such plans). A crash must also
  // leave at least one VM standing, or every job deadlocks waiting for a
  // schedulable slot — a real failure mode, but not one worth soaking.
  const bool with_crash = rng.chance(0.25);
  if (with_crash) {
    const int total_vms = c.hosts * c.vms;
    if (c.hosts >= 2 && rng.chance(0.4)) {  // declared-dead + re-replication
      std::snprintf(buf, sizeof buf, "hostcrash:host=%d,from=%.3f",
                    static_cast<int>(rng.below(static_cast<std::uint64_t>(c.hosts))),
                    rng.uniform(0.5, 6.0));
      c.fault_specs.push_back(buf);
    } else if (total_vms >= 2) {
      std::snprintf(buf, sizeof buf, "vmcrash:vm=%d,from=%.3f",
                    static_cast<int>(rng.below(static_cast<std::uint64_t>(total_vms))),
                    rng.uniform(0.5, 6.0));
      c.fault_specs.push_back(buf);
    }
  } else if (rng.chance(0.25)) {  // bounded VM outage (may legitimately fail the job)
    const double from = rng.uniform(0.0, 4.0);
    std::snprintf(buf, sizeof buf, "vmdown:vm=%d,from=%.3f,until=%.3f",
                  static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(c.hosts * c.vms))),
                  from, from + rng.uniform(0.1, 2.0));
    c.fault_specs.push_back(buf);
  }
  if (rng.chance(0.35)) {  // multi-job open-arrival stream (tenancy path)
    std::ostringstream st;
    const int jobs = static_cast<int>(rng.range(2, 5));
    st << "arrive,poisson,rate=" << 0.02 + 0.18 * rng.uniform()
       << ",jobs=" << jobs;
    const int n_classes = static_cast<int>(rng.range(1, 2));
    const double share0 = rng.uniform(0.2, 0.8);
    for (int i = 0; i < n_classes; ++i) {
      const int lo = static_cast<int>(rng.range(8, 12));
      st << ";class,name=c" << i << ",wl=" << kWorkloads[rng.below(3)]
         << ",mb=" << lo << "-" << lo + static_cast<int>(rng.below(9));
      if (rng.chance(0.5)) st << ",prio=" << rng.range(0, 5);
      if (rng.chance(0.5)) st << ",weight=" << rng.range(1, 4);
      if (n_classes == 2) st << ",share=" << (i == 0 ? share0 : 1.0 - share0);
      if (rng.chance(0.3)) st << ",deadline=" << rng.range(10, 500);
      if (rng.chance(0.5)) st << ",mix=" << rng.range(1, 3);
    }
    if (rng.chance(0.4)) {  // overload protection (admission gate + shed)
      st << ";admit,active=" << rng.range(1, 3) << ",queue=" << rng.range(0, 3);
      // Host-death retries only make sense when a crash is in the plan.
      if (with_crash && rng.chance(0.5)) {
        st << ",retries=1,backoff=" << rng.range(1, 10);
      }
    }
    c.stream = st.str();
    static const char* kPolicies[] = {"fifo", "fair", "capacity"};
    c.stream_policy = kPolicies[rng.below(3)];
  }
  return c;
}

// ---- armed execution -------------------------------------------------------

struct RunObservation {
  std::uint64_t digest = 0;    // FNV-1a over the full trace JSON
  std::string violations;      // auditor report when not clean
  bool infra = false;
  bool budget = false;         // event/time budget tripped (livelock suspect)
  std::string error;           // RunOutput.error when the run failed
};

RunObservation observe(const iosim::exp::ScenarioPoint& pt, std::uint64_t seed) {
  iosim::trace::TraceSession ts;
  iosim::obs::AttributionSession as;  // drives the stamp-monotonicity hooks
  iosim::check::AuditorSession cs(iosim::check::Auditor::Mode::kRecord);
  const iosim::exp::RunOutput out = iosim::exp::execute_point(pt, seed);
  RunObservation r;
  r.digest = iosim::exp::fnv1a64(ts.tracer().to_json());
  if (!cs.auditor().ok()) r.violations = cs.auditor().report().to_string();
  r.infra = out.infra_failure;
  r.budget = out.budget_stop;
  if (!out.ok) r.error = out.error;
  return r;
}

/// Run every task of the (single-point) spec twice; empty string when the
/// configuration is clean, otherwise a one-paragraph failure description.
std::string check_spec(const ScenarioSpec& spec) {
  const auto points = spec.expand();
  for (const auto& task : iosim::exp::build_run_matrix(spec)) {
    const auto& pt = points[task.point_index];
    const RunObservation a = observe(pt, task.seed);
    if (!a.violations.empty()) return "invariant violations:\n" + a.violations;
    if (a.infra) return "infra failure: " + a.error;
    if (a.budget) return "budget stop (livelock suspect): " + a.error;
    const RunObservation b = observe(pt, task.seed);
    if (!b.violations.empty()) {
      return "invariant violations (repeat run):\n" + b.violations;
    }
    if (b.infra) return "infra failure (repeat run): " + b.error;
    if (b.budget) return "budget stop (repeat run): " + b.error;
    if (a.digest != b.digest) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "same-seed digest mismatch: 0x%016llx vs 0x%016llx",
                    static_cast<unsigned long long>(a.digest),
                    static_cast<unsigned long long>(b.digest));
      return buf;
    }
  }
  return "";
}

std::string check_config(const SoakConfig& c, const std::string& name) {
  std::string err;
  const auto spec = ScenarioSpec::parse(spec_text(c, name), &err);
  if (!spec.has_value()) {
    return "soak generator produced an unparseable spec (harness bug): " + err;
  }
  return check_spec(*spec);
}

// ---- minimization ----------------------------------------------------------

/// Greedy shrink to fixpoint: drop fault specs one at a time, then shrink
/// the cluster and data size, keeping each step only if the failure still
/// reproduces. Worst case a handful of extra runs per step — cheap next to
/// debugging an unminimized config.
SoakConfig minimize(SoakConfig c, const std::string& name) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < c.fault_specs.size(); ++i) {
      SoakConfig cand = c;
      cand.fault_specs.erase(cand.fault_specs.begin() + static_cast<long>(i));
      if (!check_config(cand, name).empty()) {
        c = cand;
        changed = true;
        break;
      }
    }
    if (changed) continue;
    const auto try_field = [&](SoakConfig cand) {
      if (!check_config(cand, name).empty()) {
        c = cand;
        changed = true;
      }
    };
    if (!c.stream.empty() && !changed) {  // single-job repros debug faster
      SoakConfig cand = c;
      cand.stream.clear();
      cand.stream_policy.clear();
      try_field(cand);
    }
    if (c.vms > 1 && !changed) {
      SoakConfig cand = c;
      cand.vms = 1;
      try_field(cand);
    }
    if (c.hosts > 1 && !changed) {
      SoakConfig cand = c;
      cand.hosts = 1;
      try_field(cand);
    }
    if (c.mb > 8 && !changed) {
      SoakConfig cand = c;
      cand.mb = 8;
      try_field(cand);
    }
    if (c.workload != "sort" && !changed) {
      SoakConfig cand = c;
      cand.workload = "sort";
      try_field(cand);
    }
  }
  return c;
}

// ---- modes -----------------------------------------------------------------

int run_repro(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "iosim-soak: cannot read '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  const auto spec = ScenarioSpec::parse(ss.str(), &err);
  if (!spec.has_value()) {
    std::fprintf(stderr, "iosim-soak: '%s' is not a valid spec: %s\n", path.c_str(),
                 err.c_str());
    return 2;
  }
  const std::string why = check_spec(*spec);
  if (why.empty()) {
    std::printf("iosim-soak: %s no longer reproduces a failure\n", path.c_str());
    return 0;
  }
  std::printf("iosim-soak: %s still fails:\n%s\n", path.c_str(), why.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t master = 1;
  std::uint64_t runs = 200;
  std::string out_dir = "soak-repro";
  std::string repro;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    const char* v = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (a == "--seed" && v != nullptr) {
      unsigned long long x = 0;
      if (!iosim::tools::parse_u64_arg(v, &x)) {
        std::fprintf(stderr, "iosim-soak: --seed must be an unsigned integer, got '%s'\n", v);
        return usage(argv[0]);
      }
      master = x;
      ++i;
    } else if (a == "--runs" && v != nullptr) {
      unsigned long long x = 0;
      if (!iosim::tools::parse_u64_arg(v, &x) || x == 0) {
        std::fprintf(stderr, "iosim-soak: --runs must be a positive integer, got '%s'\n", v);
        return usage(argv[0]);
      }
      runs = x;
      ++i;
    } else if (a == "--out-dir" && v != nullptr) {
      out_dir = v;
      ++i;
    } else if (a == "--repro" && v != nullptr) {
      repro = v;
      ++i;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "iosim-soak: unknown or incomplete flag '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }

  if (!repro.empty()) return run_repro(repro);

  std::uint64_t failures = 0;
  for (std::uint64_t i = 0; i < runs; ++i) {
    char name[48];
    std::snprintf(name, sizeof name, "soak-%llu-%llu",
                  static_cast<unsigned long long>(master),
                  static_cast<unsigned long long>(i));
    const SoakConfig cfg = generate(master, i);
    const std::string why = check_config(cfg, name);
    if (why.empty()) {
      if (!quiet && (i + 1) % 25 == 0) {
        std::printf("iosim-soak: %llu/%llu configurations clean\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(runs));
        std::fflush(stdout);
      }
      continue;
    }
    ++failures;
    std::fprintf(stderr, "iosim-soak: configuration %s FAILED: %s\n", name,
                 why.c_str());
    const SoakConfig min = minimize(cfg, name);
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string path = out_dir + "/repro-" + std::to_string(master) + "-" +
                             std::to_string(i) + ".txt";
    std::string werr;
    if (!iosim::exp::write_file_atomic(path, spec_text(min, std::string(name) + "-min"),
                                       &werr)) {
      std::fprintf(stderr, "iosim-soak: cannot write repro file: %s\n", werr.c_str());
    } else {
      std::fprintf(stderr, "iosim-soak: minimized repro written to %s\n", path.c_str());
    }
  }

  std::printf("iosim-soak: %llu/%llu configurations clean (master seed %llu)\n",
              static_cast<unsigned long long>(runs - failures),
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(master));
  return failures == 0 ? 0 : 1;
}
