// iosim: shared helpers for the command-line tools.
//
// Every iosim CLI follows the same error-handling convention (set by
// iosimctl): unknown or malformed flags print a one-line diagnostic plus the
// usage text and exit 2. The strict numeric parsers here replace bare
// std::atoi, which silently accepts trailing garbage ("4x" -> 4) and maps
// unparseable input to 0 — both of which turn a typo into a quietly wrong
// run instead of a usage error.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace iosim::tools {

/// Strict base-10 integer parse: the whole string must be a number that
/// fits a long long. Returns false on empty input, trailing garbage, or
/// overflow.
inline bool parse_ll_arg(const char* s, long long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict int parse (rejects values outside int's range as well).
inline bool parse_int_arg(const char* s, int* out) {
  long long v = 0;
  if (!parse_ll_arg(s, &v)) return false;
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

/// Strict unsigned 64-bit parse (for seeds).
inline bool parse_u64_arg(const char* s, unsigned long long* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict finite double parse.
inline bool parse_double_arg(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  if (!(v == v) || v > std::numeric_limits<double>::max() ||
      v < -std::numeric_limits<double>::max()) {
    return false;  // NaN or +-inf
  }
  *out = v;
  return true;
}

}  // namespace iosim::tools
