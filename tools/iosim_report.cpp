// iosim-report — render a self-contained HTML report from run artifacts.
//
//   iosim-report --trace trace.json --bench BENCH_smoke.json -o report.html
//
// Consumes the trace JSON an instrumented run exports (iosimctl run
// --trace ... --obs, which pins the attribution lane summaries and the
// stall log into the trace) and any number of BENCH JSON files (flat bench
// reports or sweep-engine outputs), and writes one dependency-free HTML
// document: latency waterfalls per (host, vm, dir, sync, phase) key,
// per-phase percentile breakdowns, the stall log with its Dom0 queue
// snapshots, dropped-event accounting, and one table per BENCH file. The
// output is deterministic: same input bytes, same HTML bytes (the CI smoke
// job archives it next to the BENCH JSON).
//
// Exit codes: 0 report written; 1 unreadable/malformed input or write
// failure; 2 usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/artifact.hpp"
#include "exp/report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trace FILE] [--bench FILE]... [--title TEXT] -o OUT.html\n"
               "  --trace FILE   Chrome-trace JSON from an instrumented run\n"
               "  --bench FILE   BENCH JSON (repeatable; flat or sweep format)\n"
               "  --title TEXT   report title (default: iosim report)\n"
               "  -o OUT.html    output path (written atomically)\n"
               "at least one of --trace / --bench is required\n",
               argv0);
  return 2;
}

bool slurp(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "iosim-report: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::vector<std::string> bench_paths;
  std::string out_path;
  iosim::exp::ReportOptions opt;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "iosim-report: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--trace") == 0) {
      const char* v = need_value(a);
      if (v == nullptr) return usage(argv[0]);
      trace_path = v;
    } else if (std::strcmp(a, "--bench") == 0) {
      const char* v = need_value(a);
      if (v == nullptr) return usage(argv[0]);
      bench_paths.push_back(v);
    } else if (std::strcmp(a, "--title") == 0) {
      const char* v = need_value(a);
      if (v == nullptr) return usage(argv[0]);
      opt.title = v;
    } else if (std::strcmp(a, "-o") == 0 || std::strcmp(a, "--out") == 0) {
      const char* v = need_value(a);
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else {
      std::fprintf(stderr, "iosim-report: unknown flag %s\n", a);
      return usage(argv[0]);
    }
  }
  if (out_path.empty() || (trace_path.empty() && bench_paths.empty())) {
    return usage(argv[0]);
  }

  std::string trace_json;
  if (!trace_path.empty() && !slurp(trace_path, &trace_json)) return 1;

  std::vector<iosim::exp::ReportBench> benches;
  for (const auto& p : bench_paths) {
    iosim::exp::ReportBench b;
    // Label = basename, so reports don't bake in CI scratch directories.
    const auto slash = p.find_last_of('/');
    b.label = slash == std::string::npos ? p : p.substr(slash + 1);
    if (!slurp(p, &b.text)) return 1;
    benches.push_back(std::move(b));
  }

  std::string error;
  const std::string html =
      iosim::exp::render_report(trace_json, benches, opt, &error);
  if (html.empty()) {
    std::fprintf(stderr, "iosim-report: %s\n", error.c_str());
    return 1;
  }
  if (!iosim::exp::write_file_atomic(out_path, html, &error)) {
    std::fprintf(stderr, "iosim-report: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "iosim-report: wrote %s (%zu bytes)\n", out_path.c_str(),
               html.size());
  return 0;
}
