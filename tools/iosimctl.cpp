// iosimctl — command-line front end for the simulator.
//
//   iosimctl run      --workload sort --hosts 4 --vms 4 --mb 512 --pair ad
//   iosimctl sweep    --workload sort [--seeds 3]          (all 16 pairs)
//   iosimctl adapt    --workload sort [--phases 2|3]       (meta-scheduler)
//   iosimctl finegrained --workload sort                   (online controller)
//   iosimctl sysbench --vms 3 --mb 1024 --pair cc
//   iosimctl switchcost [--mb 600]                          (Fig. 5 matrix)
//   iosimctl stream   --spec 'arrive,poisson,rate=0.05,jobs=8;class,...'
//                     [--policy fifo|fair|capacity] [--jobs]
//
// Every command prints a table; `--csv` switches to CSV for scripting.
// Unknown flags, stray positionals, and malformed `--fault` specs are
// rejected with a diagnostic and exit code 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/fine_grained.hpp"
#include "core/meta_scheduler.hpp"
#include "core/online_scheduler.hpp"
#include "core/phase_detector.hpp"
#include "core/switch_cost.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/iostat_sampler.hpp"
#include "metrics/registry_table.hpp"
#include "metrics/table.hpp"
#include "obs/attribution.hpp"
#include "tenancy/stream_runner.hpp"
#include "tenancy/stream_spec.hpp"
#include "trace/registry.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/microbench.hpp"

using namespace iosim;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string str(const std::string& k, const std::string& d) const {
    auto it = kv.find(k);
    return it == kv.end() ? d : it->second;
  }
  long num(const std::string& k, long d) const {
    auto it = kv.find(k);
    return it == kv.end() ? d : std::atol(it->second.c_str());
  }
};

/// Per-command flag whitelist: `valued` flags consume the next argv token,
/// `boolean` flags stand alone.
struct FlagSet {
  std::set<std::string> valued;
  std::set<std::string> boolean;
};

int usage() {
  std::fprintf(stderr,
               "usage: iosimctl <run|sweep|adapt|finegrained|sysbench|switchcost|stream> "
               "[--workload sort|wordcount|wc-nocombiner] [--hosts N] [--vms N] "
               "[--mb N] [--pair xy] [--seeds N] [--phases 2|3] [--csv] "
               "[--trace FILE] [--metrics] [--fault SPEC] [--fault-file FILE] "
               "[--speculate]\n"
               "pair letters: n=noop d=deadline a=anticipatory c=cfq; first "
               "letter = VMM (Dom0), second = VM guests\n"
               "--trace FILE   record a flight-recorder trace of the run; "
               "FILE ending in .csv selects CSV, anything else Chrome "
               "trace-event JSON (chrome://tracing / ui.perfetto.dev)\n"
               "--metrics      collect the named-metrics registry and print it "
               "after the run\n"
               "--obs          enable request-path latency attribution: per-"
               "(host,vm,dir,sync,phase) waterfall table after the run, lane "
               "sketch summaries + stall log pinned into the trace (feed the "
               "JSON to iosim-report), obs.* gauges in --metrics\n"
               "--fault SPEC   inject faults (repeatable); SPEC is "
               "kind:key=value,... — e.g. transient:host=0,p=0.01 "
               "lse:host=1,lba=1000-2000 failslow:host=0,factor=4 "
               "vmdown:vm=3,from=10,until=30 switchfail:p=1 switchdelay:delay=2\n"
               "--fault-file FILE  load a `;`/newline-separated fault plan\n"
               "--speculate    enable Hadoop-style speculative map execution\n"
               "stream flags:\n"
               "--spec SPEC    job-stream grammar (arrive,... ;class,... ;policy,...)\n"
               "--policy P     override the stream's slot policy (fifo|fair|capacity)\n"
               "--jobs         also print the per-job arrival/sojourn table\n");
  return 2;
}

/// Strict parser: every token must be a whitelisted flag; valued flags must
/// have a value. Returns nullopt (after printing a diagnostic) on any
/// violation so the caller can exit non-zero instead of silently ignoring a
/// typo.
std::optional<Args> parse(int argc, char** argv, int from, const std::string& cmd,
                          const FlagSet& flags) {
  Args a;
  const std::set<std::string> fault_flags = {"fault", "fault-file", "speculate"};
  for (int i = from; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--", 0) != 0) {
      std::fprintf(stderr, "iosimctl %s: unexpected argument '%s'\n", cmd.c_str(),
                   s.c_str());
      return std::nullopt;
    }
    const std::string key = s.substr(2);
    if (flags.valued.count(key) != 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "iosimctl %s: --%s requires a value\n", cmd.c_str(),
                     key.c_str());
        return std::nullopt;
      }
      const std::string val = argv[++i];
      if (key == "fault" && a.has("fault")) {
        a.kv["fault"] += ";" + val;  // --fault is repeatable
      } else {
        a.kv[key] = val;
      }
    } else if (flags.boolean.count(key) != 0) {
      a.kv[key] = "1";
    } else if (fault_flags.count(key) != 0) {
      std::fprintf(stderr, "iosimctl %s: fault injection (--%s) is not supported "
                           "by this command\n",
                   cmd.c_str(), key.c_str());
      return std::nullopt;
    } else {
      std::fprintf(stderr, "iosimctl %s: unknown flag --%s\n", cmd.c_str(),
                   key.c_str());
      return std::nullopt;
    }
  }
  return a;
}

/// RAII wrapper for --trace / --metrics / --obs: installs the global tracer,
/// registry, and/or attribution layer for the duration of a command, then
/// writes the trace file and prints the tables on the way out.
class Telemetry {
 public:
  explicit Telemetry(const Args& a)
      : trace_path_(a.str("trace", "")), want_metrics_(a.has("metrics")) {
    if (!trace_path_.empty()) trace_.emplace();
    if (want_metrics_) metrics_.emplace();
    if (a.has("obs")) obs_.emplace();
  }
  ~Telemetry() {
    if (obs_) {
      // Export attribution *before* the trace file is written / the registry
      // is printed, so both carry the lane summaries.
      auto& at = obs_->attribution();
      if (trace_) at.export_to_trace(trace_->tracer());
      if (metrics_) at.publish(metrics_->registry());
      print_waterfall(at);
    }
    if (trace_) {
      const bool csv = trace_path_.size() >= 4 &&
                       trace_path_.compare(trace_path_.size() - 4, 4, ".csv") == 0;
      auto& tr = trace_->tracer();
      if (tr.write_file(trace_path_, csv)) {
        std::fprintf(stderr, "trace: %zu events (%llu dropped) -> %s\n", tr.size(),
                     static_cast<unsigned long long>(tr.dropped()), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: failed to write %s\n", trace_path_.c_str());
      }
    }
    if (metrics_) {
      auto tab = metrics::registry_table(metrics_->registry());
      tab.print();
    }
  }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  bool active() const { return trace_.has_value() || metrics_.has_value(); }

  /// SetupHook add-on: attach an iostat sampler to every Dom0 and guest
  /// block layer of the cluster, stopping when the job completes. The
  /// sampler must outlive the run, so it parks in `samplers_`.
  void attach_sampler(cluster::Cluster& cl, mapred::Job& job) {
    if (!active()) return;
    auto s = std::make_shared<metrics::IostatSampler>(cl.simr());
    for (std::size_t h = 0; h < cl.n_hosts(); ++h) {
      auto& host = cl.host(h);
      s->watch(host.dom0_layer());
      for (std::size_t v = 0; v < host.vm_count(); ++v) s->watch(host.vm(v).layer());
    }
    s->stop_when([&job] { return job.done() || job.failed(); });
    s->start();
    samplers_.push_back(std::move(s));
  }

  /// iostat summary of the last run (multi-seed runs keep only the last).
  void print_iostat() const {
    if (samplers_.empty()) return;
    auto tab = samplers_.back()->table();
    tab.print();
  }

 private:
  /// Per-key latency waterfall: lane means (µs) plus end-to-end percentiles.
  static void print_waterfall(obs::Attribution& at) {
    metrics::Table tab("latency attribution (" + std::to_string(at.records_completed()) +
                       " requests, " + std::to_string(at.stalls_total()) + " stalls)");
    tab.headers({"key", "count", "guest q µs", "ring µs", "elv wait µs",
                 "service µs", "ret µs", "p50 ms", "p99 ms"});
    for (std::size_t i = 0; i < at.n_keys(); ++i) {
      const auto& total = at.lane(i, obs::Lane::kTotal);
      auto mean_us = [&](obs::Lane l) {
        const auto& sk = at.lane(i, l);
        return metrics::Table::num(
            sk.count() > 0
                ? static_cast<double>(sk.sum()) / static_cast<double>(sk.count()) / 1e3
                : 0.0,
            1);
      };
      tab.row({obs::Attribution::key_name(at.key_at(i)),
               std::to_string(total.count()), mean_us(obs::Lane::kGuestQueue),
               mean_us(obs::Lane::kRingWait), mean_us(obs::Lane::kElvWait),
               mean_us(obs::Lane::kService), mean_us(obs::Lane::kReturn),
               metrics::Table::num(static_cast<double>(total.quantile(0.5)) / 1e6, 2),
               metrics::Table::num(static_cast<double>(total.quantile(0.99)) / 1e6, 2)});
    }
    tab.print();
  }

  std::string trace_path_;
  bool want_metrics_;
  std::optional<trace::TraceSession> trace_;
  std::optional<trace::MetricsSession> metrics_;
  std::optional<obs::AttributionSession> obs_;
  std::vector<std::shared_ptr<metrics::IostatSampler>> samplers_;
};

mapred::JobConf workload_of(const Args& a) {
  const std::string w = a.str("workload", "sort");
  const auto mb = a.num("mb", 512);
  const auto model = workloads::by_name(w);
  if (!model) {
    std::fprintf(stderr, "unknown workload '%s'\n", w.c_str());
    std::exit(2);
  }
  auto jc = workloads::make_job(*model, mb * mapred::kMiB);
  if (a.has("speculate")) jc.speculative_execution = true;
  return jc;
}

/// Assemble the fault plan from --fault specs and/or --fault-file. Malformed
/// specs and unreadable files are fatal (exit 2) with a diagnostic naming
/// the offending token — a silently dropped fault would invalidate the
/// experiment it was meant to perturb.
fault::FaultPlan faults_of(const Args& a) {
  std::string text;
  if (a.has("fault-file")) {
    const std::string path = a.str("fault-file", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "iosimctl: cannot read fault file '%s'\n", path.c_str());
      std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  if (a.has("fault")) {
    if (!text.empty()) text += "\n";
    text += a.str("fault", "");
  }
  if (text.empty()) return {};
  std::string err;
  auto plan = fault::FaultPlan::parse(text, &err);
  if (!plan) {
    std::fprintf(stderr, "iosimctl: bad fault spec: %s\n", err.c_str());
    std::exit(2);
  }
  return *plan;
}

cluster::ClusterConfig cluster_of(const Args& a) {
  cluster::ClusterConfig cfg;
  cfg.n_hosts = static_cast<int>(a.num("hosts", 4));
  cfg.vms_per_host = static_cast<int>(a.num("vms", 4));
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  const std::string p = a.str("pair", "cc");
  const auto vmm = p.size() == 2 ? iosched::scheduler_from_string(p.substr(0, 1))
                                 : std::nullopt;
  const auto guest = p.size() == 2 ? iosched::scheduler_from_string(p.substr(1, 1))
                                   : std::nullopt;
  if (!vmm || !guest) {
    std::fprintf(stderr, "iosimctl: bad scheduler pair '%s' (two of n/d/a/c)\n",
                 p.c_str());
    std::exit(2);
  }
  cfg.pair = {*vmm, *guest};
  cfg.faults = faults_of(a);
  return cfg;
}

void emit(const Args& a, metrics::Table& tab) {
  if (a.has("csv")) {
    std::fputs(tab.to_csv().c_str(), stdout);
  } else {
    tab.print();
  }
}

/// Failed jobs must be loud: print the diagnostic and exit non-zero so
/// scripted experiments notice.
int report_failure(const cluster::RunResult& r) {
  std::fprintf(stderr, "job FAILED: %s\n", r.failure.c_str());
  return 1;
}

int cmd_run(const Args& a) {
  const auto cfg = cluster_of(a);
  const auto jc = workload_of(a);
  Telemetry tel(a);
  const auto plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
  const auto r = cluster::run_job_avg(
      cfg, jc, static_cast<int>(a.num("seeds", 1)),
      [&tel, plan](cluster::Cluster& cl, mapred::Job& job) {
        if (tel.active()) {
          // Observation only: phase-transition instants on the trace without
          // any switching (the adaptive commands do the switching).
          core::PhaseDetector::attach(job, plan, [](int, sim::Time) {});
        }
        tel.attach_sampler(cl, job);
      });
  tel.print_iostat();
  if (r.failed) return report_failure(r);
  metrics::Table tab("job run");
  tab.headers({"pair", "seconds", "ph1", "ph2", "ph3", "maps", "reduces",
               "shuffle MB", "output MB", "retries", "failovers"});
  tab.row({cfg.pair.to_string(), metrics::Table::num(r.seconds, 1),
           metrics::Table::num(r.ph1_seconds, 1), metrics::Table::num(r.ph2_seconds, 1),
           metrics::Table::num(r.ph3_seconds, 1), std::to_string(r.stats.maps_total),
           std::to_string(r.stats.reduces_total),
           metrics::Table::num(static_cast<double>(r.stats.shuffle_bytes) / 1e6, 0),
           metrics::Table::num(static_cast<double>(r.stats.output_bytes) / 1e6, 0),
           std::to_string(r.stats.map_attempts_failed + r.stats.reduce_attempts_failed),
           std::to_string(r.stats.hdfs_failovers)});
  emit(a, tab);
  return 0;
}

int cmd_sweep(const Args& a) {
  const auto base = cluster_of(a);
  const auto jc = workload_of(a);
  const int seeds = static_cast<int>(a.num("seeds", 1));
  metrics::Table tab("16-pair sweep (seconds)");
  tab.headers({"VM \\ VMM", "cfq", "deadline", "anticipatory", "noop"});
  const iosched::SchedulerKind order[4] = {
      iosched::SchedulerKind::kCfq, iosched::SchedulerKind::kDeadline,
      iosched::SchedulerKind::kAnticipatory, iosched::SchedulerKind::kNoop};
  for (auto g : order) {
    std::vector<std::string> row{iosched::to_string(g)};
    for (auto v : order) {
      cluster::ClusterConfig cfg = base;
      cfg.pair = {v, g};
      const auto r = cluster::run_job_avg(cfg, jc, seeds);
      row.push_back(r.failed ? "FAIL" : metrics::Table::num(r.seconds, 1));
    }
    tab.row(row);
  }
  emit(a, tab);
  return 0;
}

int cmd_adapt(const Args& a) {
  const auto cfg = cluster_of(a);
  const auto jc = workload_of(a);
  core::MetaSchedulerOptions opts;
  if (a.has("phases")) {
    opts.plan = core::PhasePlan{a.num("phases", 2) == 2};
  } else {
    opts.plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
  }
  opts.seeds_per_eval = static_cast<int>(a.num("seeds", 1));
  opts.verbose = a.has("verbose");
  Telemetry tel(a);
  core::MetaScheduler ms(cfg, jc, opts);
  const auto r = ms.optimize();
  metrics::Table tab("meta-scheduler result");
  tab.headers({"metric", "value"});
  tab.row({"solution", r.solution.to_string() + (r.fell_back ? " (fallback)" : "")});
  tab.row({"default (cfq,cfq)", metrics::Table::num(r.default_seconds, 1) + " s"});
  tab.row({"best single", metrics::Table::num(r.best_single_seconds, 1) + " s  " +
                              r.best_single.to_string()});
  tab.row({"adaptive", metrics::Table::num(r.adaptive_seconds, 1) + " s"});
  tab.row({"vs default", metrics::Table::pct(100 * r.improvement_vs_default(), 1)});
  tab.row({"vs best single", metrics::Table::pct(100 * r.improvement_vs_best_single(), 1)});
  tab.row({"heuristic evals", std::to_string(r.heuristic_evaluations)});
  emit(a, tab);
  return 0;
}

int cmd_finegrained(const Args& a) {
  const auto cfg = cluster_of(a);
  const auto jc = workload_of(a);
  Telemetry tel(a);
  std::shared_ptr<core::FineGrainedController> ctl;
  const auto r =
      cluster::run_job(cfg, jc, [&ctl, &tel](cluster::Cluster& cl, mapred::Job& job) {
        ctl = core::FineGrainedController::attach(cl, job, core::FineGrainedPolicy{},
                                                  core::SwitchPredictor{2.0});
        tel.attach_sampler(cl, job);
      });
  tel.print_iostat();
  if (r.failed) return report_failure(r);
  metrics::Table tab("fine-grained controller run");
  tab.headers({"metric", "value"});
  tab.row({"seconds", metrics::Table::num(r.seconds, 1)});
  tab.row({"switches", std::to_string(ctl->total_switches())});
  tab.row({"samples", std::to_string(ctl->samples())});
  emit(a, tab);
  return 0;
}

int cmd_sysbench(const Args& a) {
  const auto cfg = cluster_of(a);
  sim::Simulator simr;
  virt::HostConfig hc;
  hc.dom0_blk.scheduler = cfg.pair.vmm;
  hc.domu.guest_blk.scheduler = cfg.pair.guest;
  virt::PhysicalHost host(simr, hc, 0, 0, cfg.seed);
  for (int v = 0; v < cfg.vms_per_host; ++v) host.add_vm();
  workloads::SeqWriteParams p;
  p.bytes_per_vm = a.num("mb", 1024) * mapred::kMiB;
  const auto res = workloads::run_seq_writers(simr, host, p);
  metrics::Table tab("sysbench seqwr");
  tab.headers({"pair", "VMs", "MB/VM", "elapsed s", "agg MB/s"});
  tab.row({cfg.pair.to_string(), std::to_string(cfg.vms_per_host),
           std::to_string(a.num("mb", 1024)), metrics::Table::num(res.elapsed.sec(), 1),
           metrics::Table::num(static_cast<double>(p.bytes_per_vm) * cfg.vms_per_host /
                                   res.elapsed.sec() / 1e6,
                               1)});
  emit(a, tab);
  return 0;
}

int cmd_stream(const Args& a) {
  if (!a.has("spec")) {
    std::fprintf(stderr, "iosimctl stream: --spec is required\n");
    return 2;
  }
  std::string err;
  auto spec = tenancy::StreamSpec::parse(a.str("spec", ""), &err);
  if (!spec) {
    std::fprintf(stderr, "iosimctl stream: bad --spec: %s\n", err.c_str());
    return 2;
  }
  if (a.has("policy")) {
    const auto p = tenancy::policy_by_name(a.str("policy", ""));
    if (!p) {
      std::fprintf(stderr, "iosimctl stream: bad --policy '%s' (fifo|fair|capacity)\n",
                   a.str("policy", "").c_str());
      return 2;
    }
    spec->policy = *p;
  }
  const auto cfg = cluster_of(a);
  Telemetry tel(a);
  // Honours the spec's meta segment: policy=static/offline/ucb/egreedy runs
  // through the meta-scheduling pipeline, a meta-free spec is a plain
  // run_stream (DESIGN.md §14).
  const auto mr = core::run_stream_with_policy(cfg, *spec);
  const auto& r = mr.stream;
  if (!r.ok) {
    std::fprintf(stderr, "stream FAILED: %s\n", r.error.c_str());
    return 1;
  }
  metrics::Table head("job stream (" + std::string(tenancy::to_string(spec->policy)) +
                      " policy)");
  head.headers({"pair", "jobs", "completed", "failed", "SLA viol", "makespan s"});
  head.row({cfg.pair.to_string(), std::to_string(static_cast<int>(r.jobs.size())),
            std::to_string(r.jobs_completed), std::to_string(r.jobs_failed),
            std::to_string(r.sla_violations), metrics::Table::num(r.makespan_s, 1)});
  emit(a, head);
  if (spec->meta.enabled()) {
    metrics::Table mt("meta-scheduling (" +
                      std::string(tenancy::to_string(spec->meta.policy)) + ")");
    mt.headers({"boot pair", "pulls", "switches", "switch fails", "decays",
                "profile runs", "schedule"});
    mt.row({mr.boot_pair, std::to_string(mr.arm_pulls),
            std::to_string(mr.arm_switches), std::to_string(mr.switch_failures),
            std::to_string(mr.decays), std::to_string(mr.profile_runs),
            mr.schedule_key.empty() ? "-" : mr.schedule_key});
    emit(a, mt);
  }
  metrics::Table cls("per-class sojourn (arrival -> completion, seconds)");
  cls.headers({"class", "jobs", "done", "failed", "SLA viol", "p50", "p95", "p99",
               "mean"});
  for (const auto& c : r.classes) {
    cls.row({c.name, std::to_string(c.jobs), std::to_string(c.completed),
             std::to_string(c.failed), std::to_string(c.sla_violations),
             metrics::Table::num(c.p50_s, 1), metrics::Table::num(c.p95_s, 1),
             metrics::Table::num(c.p99_s, 1), metrics::Table::num(c.mean_s, 1)});
  }
  emit(a, cls);
  if (a.has("jobs")) {
    metrics::Table jt("per-job timeline");
    jt.headers({"job", "class", "MB", "arrive s", "done s", "sojourn s", "state"});
    for (const auto& j : r.jobs) {
      const auto& cname = spec->classes[static_cast<std::size_t>(j.class_index)].name;
      jt.row({std::to_string(j.job_id), cname, std::to_string(j.size_mb),
              metrics::Table::num(j.t_arrive_s, 1),
              j.completed ? metrics::Table::num(j.t_done_s, 1) : "-",
              j.completed ? metrics::Table::num(j.sojourn_s, 1) : "-",
              j.failed ? "FAILED" : (j.completed ? (j.sla_violated ? "SLA-VIOL" : "ok")
                                                 : "unfinished")});
    }
    emit(a, jt);
  }
  return 0;
}

int cmd_switchcost(const Args& a) {
  core::SwitchCostConfig cfg;
  cfg.dd_bytes_per_vm = a.num("mb", 600) * mapred::kMiB;
  const auto m = core::SwitchCostMatrix::measure(cfg);
  const auto pairs = iosched::all_scheduler_pairs();
  metrics::Table tab("switch-cost matrix (seconds)");
  std::vector<std::string> hdr{"from \\ to"};
  for (const auto& p : pairs) hdr.push_back(p.letters());
  tab.headers(hdr);
  for (const auto& x : pairs) {
    std::vector<std::string> row{x.letters()};
    for (const auto& y : pairs) row.push_back(metrics::Table::num(m.cost_seconds(x, y), 1));
    tab.row(row);
  }
  emit(a, tab);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  const FlagSet cluster_flags{{"workload", "hosts", "vms", "mb", "pair", "seed",
                               "seeds", "trace", "fault", "fault-file"},
                              {"csv", "metrics", "obs", "speculate"}};
  FlagSet adapt_flags = cluster_flags;
  adapt_flags.valued.insert("phases");
  adapt_flags.boolean.insert("verbose");
  const FlagSet sysbench_flags{{"vms", "mb", "pair", "seed", "hosts"}, {"csv"}};
  const FlagSet switchcost_flags{{"mb"}, {"csv"}};
  const FlagSet stream_flags{{"spec", "policy", "hosts", "vms", "pair", "seed",
                              "trace", "fault", "fault-file"},
                             {"csv", "metrics", "obs", "jobs"}};

  const FlagSet* flags = nullptr;
  int (*handler)(const Args&) = nullptr;
  if (cmd == "run") {
    flags = &cluster_flags;
    handler = cmd_run;
  } else if (cmd == "sweep") {
    flags = &cluster_flags;
    handler = cmd_sweep;
  } else if (cmd == "adapt") {
    flags = &adapt_flags;
    handler = cmd_adapt;
  } else if (cmd == "finegrained") {
    flags = &cluster_flags;
    handler = cmd_finegrained;
  } else if (cmd == "sysbench") {
    flags = &sysbench_flags;
    handler = cmd_sysbench;
  } else if (cmd == "switchcost") {
    flags = &switchcost_flags;
    handler = cmd_switchcost;
  } else if (cmd == "stream") {
    flags = &stream_flags;
    handler = cmd_stream;
  } else {
    std::fprintf(stderr, "iosimctl: unknown command '%s'\n", cmd.c_str());
    return usage();
  }

  const auto a = parse(argc, argv, 2, cmd, *flags);
  if (!a) return usage();
  return handler(*a);
}
