// iosim-sweep — run a declarative scenario sweep across all cores.
//
//   iosim-sweep --spec bench/specs/fig7a.spec --workers $(nproc)
//   iosim-sweep --spec bench/specs/smoke.spec --out BENCH_smoke.json
//   iosim-sweep --spec bench/specs/fig2.spec --set mb=64 --set repeats=1 --list
//
// Reads a scenario spec (see src/exp/scenario.hpp for the grammar), expands
// the axis cross product into a deterministic run matrix, fans the runs out
// over a worker pool (each worker owns its private simulator), aggregates
// per scenario point (mean / min / max / p50 / p95 / 95% CI), writes the
// versioned BENCH JSON, and prints a human table. The JSON is byte-identical
// for any --workers value: per-run seeds depend only on (base_seed,
// run_index) and aggregation walks runs in matrix order.
//
// Exit codes: 0 success, 1 a run failed (the sweep cancels on the first
// failure), 2 bad usage / malformed spec.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/executor.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"

using namespace iosim;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: iosim-sweep --spec FILE [--workers N] [--out PATH] [--set key=value]...\n"
      "                   [--repeats N] [--base-seed N] [--list] [--csv] [--quiet]\n"
      "  --spec FILE      scenario spec (axes: pair, workload, hosts, vms, mb, fault)\n"
      "  --workers N      worker threads (default: all cores; 1 = serial)\n"
      "  --out PATH       BENCH JSON output (default: BENCH_<name>.json)\n"
      "  --set key=value  override a spec line (repeatable, e.g. --set mb=64)\n"
      "  --repeats N      shorthand for --set repeats=N\n"
      "  --base-seed N    shorthand for --set base_seed=N\n"
      "  --list           print the expanded run matrix and exit\n"
      "  --csv            print the aggregate table as CSV\n"
      "  --quiet          suppress per-run progress lines\n");
  return 2;
}

struct Options {
  std::string spec_path;
  std::string out_path;
  std::vector<std::pair<std::string, std::string>> sets;
  int workers = 0;  // 0 = default_workers()
  bool list = false;
  bool csv = false;
  bool quiet = false;
};

std::optional<Options> parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "iosim-sweep: %s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (s == "--spec") {
      const char* v = need_value("--spec");
      if (!v) return std::nullopt;
      o.spec_path = v;
    } else if (s == "--workers") {
      const char* v = need_value("--workers");
      if (!v) return std::nullopt;
      o.workers = std::atoi(v);
      if (o.workers < 1) {
        std::fprintf(stderr, "iosim-sweep: --workers must be >= 1\n");
        return std::nullopt;
      }
    } else if (s == "--out") {
      const char* v = need_value("--out");
      if (!v) return std::nullopt;
      o.out_path = v;
    } else if (s == "--set") {
      const char* v = need_value("--set");
      if (!v) return std::nullopt;
      const std::string kv = v;
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "iosim-sweep: --set expects key=value, got '%s'\n",
                     kv.c_str());
        return std::nullopt;
      }
      o.sets.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (s == "--repeats") {
      const char* v = need_value("--repeats");
      if (!v) return std::nullopt;
      o.sets.emplace_back("repeats", v);
    } else if (s == "--base-seed") {
      const char* v = need_value("--base-seed");
      if (!v) return std::nullopt;
      o.sets.emplace_back("base_seed", v);
    } else if (s == "--list") {
      o.list = true;
    } else if (s == "--csv") {
      o.csv = true;
    } else if (s == "--quiet") {
      o.quiet = true;
    } else {
      std::fprintf(stderr, "iosim-sweep: unknown argument '%s'\n", s.c_str());
      return std::nullopt;
    }
  }
  if (o.spec_path.empty()) {
    std::fprintf(stderr, "iosim-sweep: --spec is required\n");
    return std::nullopt;
  }
  return o;
}

double wall_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse_args(argc, argv);
  if (!opt) return usage();

  std::ifstream in(opt->spec_path);
  if (!in) {
    std::fprintf(stderr, "iosim-sweep: cannot read spec '%s'\n", opt->spec_path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  std::string err;
  auto spec = exp::ScenarioSpec::parse(ss.str(), &err);
  if (!spec) {
    std::fprintf(stderr, "iosim-sweep: %s: %s\n", opt->spec_path.c_str(), err.c_str());
    return 2;
  }
  for (const auto& [k, v] : opt->sets) {
    if (!spec->apply(k, v, &err)) {
      std::fprintf(stderr, "iosim-sweep: --set %s=%s: %s\n", k.c_str(), v.c_str(),
                   err.c_str());
      return 2;
    }
  }

  const auto points = spec->expand();
  const auto tasks = exp::build_run_matrix(*spec);
  const int workers = opt->workers > 0 ? opt->workers : exp::default_workers();

  if (opt->list) {
    std::printf("sweep '%s' (mode=%s): %zu points x %d repeats = %zu runs\n",
                spec->name.c_str(), exp::to_string(spec->mode), points.size(),
                spec->repeats, tasks.size());
    for (const auto& t : tasks) {
      std::printf("  run %4zu  repeat %d  seed %020llu  %s\n", t.run_index, t.repeat,
                  static_cast<unsigned long long>(t.seed),
                  points[t.point_index].label().c_str());
    }
    return 0;
  }

  std::fprintf(stderr, "sweep '%s': %zu points x %d repeats = %zu runs, %d worker%s\n",
               spec->name.c_str(), points.size(), spec->repeats, tasks.size(), workers,
               workers == 1 ? "" : "s");

  exp::ExecutorOptions eopts;
  eopts.workers = workers;
  if (!opt->quiet) {
    eopts.on_progress = [&points](const exp::ProgressEvent& ev) {
      std::fprintf(stderr, "[%zu/%zu] %s %.1fs  %s (repeat %d)\n", ev.done, ev.total,
                   ev.ok ? "ok  " : "FAIL", ev.wall_seconds,
                   points[ev.task->point_index].label().c_str(), ev.task->repeat);
    };
  }

  const double t0 = wall_now();
  const auto exec = exp::execute_all(tasks, exp::make_run_fn(points), eopts);
  const double wall = wall_now() - t0;

  if (!exec.all_ok()) {
    std::fprintf(stderr,
                 "iosim-sweep: run %zu failed (%s); %zu completed, %zu skipped — "
                 "no BENCH JSON written\n",
                 exec.first_error_run, exec.first_error.c_str(), exec.completed,
                 exec.skipped);
    return 1;
  }

  const auto agg = exp::aggregate(*spec, points, tasks, exec);
  const std::string json = exp::to_json(*spec, agg);
  const std::string out_path =
      !opt->out_path.empty() ? opt->out_path : "BENCH_" + spec->name + ".json";
  std::ofstream out(out_path, std::ios::binary);
  if (!out || !(out << json)) {
    std::fprintf(stderr, "iosim-sweep: failed to write %s\n", out_path.c_str());
    return 1;
  }
  out.close();

  auto tab = exp::to_table(*spec, agg);
  if (opt->csv) {
    std::fputs(tab.to_csv().c_str(), stdout);
  } else {
    tab.print();
  }
  std::fprintf(stderr, "%zu runs in %.1fs wall (%.2f runs/s, %d workers) -> %s\n",
               tasks.size(), wall, wall > 0 ? static_cast<double>(tasks.size()) / wall : 0.0,
               workers, out_path.c_str());
  return 0;
}
