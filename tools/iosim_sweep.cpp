// iosim-sweep — run a declarative scenario sweep across all cores,
// crash-safely.
//
//   iosim-sweep --spec bench/specs/fig7a.spec --workers $(nproc)
//   iosim-sweep --spec bench/specs/smoke.spec --out BENCH_smoke.json
//   iosim-sweep --spec bench/specs/fig2.spec --set mb=64 --set repeats=1 --list
//   iosim-sweep --spec bench/specs/fig7a.spec --resume          # after a crash
//   iosim-sweep --spec bench/specs/fig7a.spec --dry-run         # CI pre-flight
//
// Reads a scenario spec (see src/exp/scenario.hpp for the grammar), expands
// the axis cross product into a deterministic run matrix, fans the runs out
// over a worker pool (each worker owns its private simulator), aggregates
// per scenario point (mean / min / max / p50 / p95 / 95% CI), writes the
// versioned BENCH JSON, and prints a human table. The JSON is byte-identical
// for any --workers value: per-run seeds depend only on (base_seed,
// run_index) and aggregation walks runs in matrix order.
//
// Robustness:
//  * Every finished run is appended (fsynced) to `<out>.journal` — a JSONL
//    run journal. After a SIGKILL / OOM / power cut, `--resume` replays the
//    journal, re-executes only the missing runs, and writes a BENCH JSON
//    byte-identical to an uninterrupted sweep. The journal is deleted once
//    the BENCH file is safely on disk.
//  * `--timeout S` (or `timeout=` in the spec) arms a per-run wall-clock
//    watchdog; a stuck run fails with a diagnostic instead of wedging the
//    pool. Infra failures (timeouts, worker exceptions) are retried with
//    exponential backoff up to --retries; deterministic simulation
//    failures never are.
//  * SIGINT/SIGTERM cancel gracefully: dispatch stops, in-flight runs
//    drain, the journal is already flushed, and a `"partial": true` BENCH
//    artifact is written. A second signal force-quits.
//  * All artifacts are written atomically (tmp + fsync + rename) and every
//    write failure (disk-full, unwritable path) is a hard error.
//
// Exit codes: 0 success, 1 a run failed or an artifact could not be written,
// 2 bad usage / malformed spec / unusable journal, 130 cancelled by signal.
#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/artifact.hpp"
#include "exp/executor.hpp"
#include "exp/journal.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"

#include "cli_util.hpp"

using namespace iosim;

namespace {

/// Signal-flagged cancellation. The first SIGINT/SIGTERM asks the executor
/// to stop dispatching and drain; a second one force-quits with the same
/// exit code (so a wedged non-cooperative run can never trap the user).
std::atomic<bool> g_cancel{false};

extern "C" void handle_cancel_signal(int) {
  if (g_cancel.exchange(true)) _exit(130);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: iosim-sweep --spec FILE [--workers N] [--out PATH] [--set key=value]...\n"
      "                   [--repeats N] [--base-seed N] [--timeout S] [--retries N]\n"
      "                   [--resume] [--dry-run] [--list] [--csv] [--quiet]\n"
      "  --spec FILE      scenario spec (axes: pair, workload, hosts, vms, mb, fault)\n"
      "  --workers N      worker threads (default: all cores; 1 = serial)\n"
      "  --out PATH       BENCH JSON output (default: BENCH_<name>.json)\n"
      "  --set key=value  override a spec line (repeatable, e.g. --set mb=64)\n"
      "  --repeats N      shorthand for --set repeats=N\n"
      "  --base-seed N    shorthand for --set base_seed=N\n"
      "  --timeout S      shorthand for --set timeout=S (per-run watchdog, 0 = off)\n"
      "  --retries N      infra-failure retries per run (default 2; sim failures\n"
      "                   are deterministic and never retried)\n"
      "  --resume         replay <out>.journal, re-execute only missing runs\n"
      "  --dry-run        validate spec + fault plans, print the run matrix, exit\n"
      "  --list           print the expanded run matrix and exit\n"
      "  --csv            print the aggregate table as CSV\n"
      "  --quiet          suppress per-run progress lines\n"
      "exit codes: 0 ok, 1 run/write failure, 2 usage/spec/journal error,\n"
      "            130 cancelled by SIGINT/SIGTERM (partial BENCH written)\n");
  return 2;
}

struct Options {
  std::string spec_path;
  std::string out_path;
  std::vector<std::pair<std::string, std::string>> sets;
  int workers = 0;  // 0 = default_workers()
  int retries = 2;
  bool resume = false;
  bool dry_run = false;
  bool list = false;
  bool csv = false;
  bool quiet = false;
};

std::optional<Options> parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "iosim-sweep: %s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (s == "--spec") {
      const char* v = need_value("--spec");
      if (!v) return std::nullopt;
      o.spec_path = v;
    } else if (s == "--workers") {
      const char* v = need_value("--workers");
      if (!v) return std::nullopt;
      if (!tools::parse_int_arg(v, &o.workers) || o.workers < 1) {
        std::fprintf(stderr, "iosim-sweep: --workers must be an integer >= 1, got '%s'\n", v);
        return std::nullopt;
      }
    } else if (s == "--out") {
      const char* v = need_value("--out");
      if (!v) return std::nullopt;
      o.out_path = v;
    } else if (s == "--set") {
      const char* v = need_value("--set");
      if (!v) return std::nullopt;
      const std::string kv = v;
      const auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "iosim-sweep: --set expects key=value, got '%s'\n",
                     kv.c_str());
        return std::nullopt;
      }
      o.sets.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (s == "--repeats") {
      const char* v = need_value("--repeats");
      if (!v) return std::nullopt;
      o.sets.emplace_back("repeats", v);
    } else if (s == "--base-seed") {
      const char* v = need_value("--base-seed");
      if (!v) return std::nullopt;
      o.sets.emplace_back("base_seed", v);
    } else if (s == "--timeout") {
      const char* v = need_value("--timeout");
      if (!v) return std::nullopt;
      o.sets.emplace_back("timeout", v);
    } else if (s == "--retries") {
      const char* v = need_value("--retries");
      if (!v) return std::nullopt;
      if (!tools::parse_int_arg(v, &o.retries) || o.retries < 0) {
        std::fprintf(stderr, "iosim-sweep: --retries must be an integer >= 0, got '%s'\n", v);
        return std::nullopt;
      }
    } else if (s == "--resume") {
      o.resume = true;
    } else if (s == "--dry-run") {
      o.dry_run = true;
    } else if (s == "--list") {
      o.list = true;
    } else if (s == "--csv") {
      o.csv = true;
    } else if (s == "--quiet") {
      o.quiet = true;
    } else {
      std::fprintf(stderr, "iosim-sweep: unknown argument '%s'\n", s.c_str());
      return std::nullopt;
    }
  }
  if (o.spec_path.empty()) {
    std::fprintf(stderr, "iosim-sweep: --spec is required\n");
    return std::nullopt;
  }
  return o;
}

double wall_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse_args(argc, argv);
  if (!opt) return usage();

  std::ifstream in(opt->spec_path);
  if (!in) {
    std::fprintf(stderr, "iosim-sweep: cannot read spec '%s'\n", opt->spec_path.c_str());
    return 2;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  std::string err;
  auto spec = exp::ScenarioSpec::parse(ss.str(), &err);
  if (!spec) {
    std::fprintf(stderr, "iosim-sweep: %s: %s\n", opt->spec_path.c_str(), err.c_str());
    return 2;
  }
  for (const auto& [k, v] : opt->sets) {
    if (!spec->apply(k, v, &err)) {
      std::fprintf(stderr, "iosim-sweep: --set %s=%s: %s\n", k.c_str(), v.c_str(),
                   err.c_str());
      return 2;
    }
  }
  // --set can grow axes past what the parsed spec validated — check again.
  if (!spec->validate(&err)) {
    std::fprintf(stderr, "iosim-sweep: %s\n", err.c_str());
    return 2;
  }

  const auto points = spec->expand();
  const auto tasks = exp::build_run_matrix(*spec);
  const int workers = opt->workers > 0 ? opt->workers : exp::default_workers();
  const std::string out_path =
      !opt->out_path.empty() ? opt->out_path : "BENCH_" + spec->name + ".json";
  const std::string journal_path = out_path + ".journal";

  if (opt->list) {
    std::printf("sweep '%s' (mode=%s): %zu points x %d repeats = %zu runs\n",
                spec->name.c_str(), exp::to_string(spec->mode), points.size(),
                spec->repeats, tasks.size());
    for (const auto& t : tasks) {
      std::printf("  run %4zu  repeat %d  seed %020llu  %s\n", t.run_index, t.repeat,
                  static_cast<unsigned long long>(t.seed),
                  points[t.point_index].label().c_str());
    }
    return 0;
  }

  if (opt->dry_run) {
    // Pre-flight: by this point the spec parsed, every fault-plan
    // alternative parsed, and every workload resolved. Print what a real
    // invocation would execute and where it would write, without running.
    std::printf("dry-run: spec '%s' OK\n", opt->spec_path.c_str());
    std::printf("  sweep '%s' (mode=%s): %zu points x %d repeats = %zu runs, "
                "%d worker%s\n",
                spec->name.c_str(), exp::to_string(spec->mode), points.size(),
                spec->repeats, tasks.size(), workers, workers == 1 ? "" : "s");
    std::printf("  base_seed=%llu fingerprint=%016llx\n",
                static_cast<unsigned long long>(spec->base_seed),
                static_cast<unsigned long long>(spec->fingerprint()));
    if (spec->timeout_seconds > 0) {
      std::printf("  watchdog: %.3gs per run, %d retr%s on infra failure\n",
                  spec->timeout_seconds, opt->retries,
                  opt->retries == 1 ? "y" : "ies");
    }
    if (spec->max_events > 0 || spec->max_sim_seconds > 0) {
      std::printf("  sim budget: max_events=%llu max_sim_seconds=%.6g\n",
                  static_cast<unsigned long long>(spec->max_events),
                  spec->max_sim_seconds);
    }
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::printf("  point %3zu  %s\n", p, points[p].label().c_str());
    }
    std::printf("  artifacts: %s (+ %s during the run)\n", out_path.c_str(),
                journal_path.c_str());
    if (opt->resume && file_exists(journal_path)) {
      std::printf("  --resume would replay %s\n", journal_path.c_str());
    }
    return 0;
  }

  // --- Journal: replay (resume) or start fresh -----------------------------
  const exp::JournalHeader header = exp::journal_header_for(*spec);
  std::vector<std::optional<exp::RunOutput>> replayed(tasks.size());
  std::size_t resumed = 0;
  if (opt->resume) {
    if (file_exists(journal_path)) {
      const auto replay = exp::read_journal(journal_path, header, tasks, &err);
      if (!replay) {
        std::fprintf(stderr, "iosim-sweep: --resume: %s\n", err.c_str());
        return 2;
      }
      replayed = replay->outputs;
      resumed = replay->n_ok;
      if (replay->truncated_tail) {
        std::fprintf(stderr,
                     "iosim-sweep: journal %s has a torn tail record "
                     "(writer was killed mid-line); that run re-executes\n",
                     journal_path.c_str());
      }
      if (replay->n_failed > 0) {
        std::fprintf(stderr,
                     "iosim-sweep: journal holds %zu failed run%s — re-executing\n",
                     replay->n_failed, replay->n_failed == 1 ? "" : "s");
      }
    } else {
      std::fprintf(stderr,
                   "iosim-sweep: --resume: no journal at %s — starting fresh\n",
                   journal_path.c_str());
    }
  } else if (file_exists(journal_path)) {
    // A fresh sweep owns its journal path; a stale one (from a crashed run
    // the user chose not to resume) must not leak into this run's records.
    ::unlink(journal_path.c_str());
  }

  auto journal = exp::RunJournal::open(journal_path, header, &err);
  if (!journal) {
    std::fprintf(stderr, "iosim-sweep: %s\n", err.c_str());
    return 1;
  }

  std::vector<exp::RunTask> pending;
  pending.reserve(tasks.size());
  for (const auto& t : tasks) {
    if (!replayed[t.run_index].has_value()) pending.push_back(t);
  }

  std::fprintf(stderr,
               "sweep '%s': %zu points x %d repeats = %zu runs (%zu resumed, "
               "%zu to run), %d worker%s\n",
               spec->name.c_str(), points.size(), spec->repeats, tasks.size(), resumed,
               pending.size(), workers, workers == 1 ? "" : "s");

  std::signal(SIGINT, handle_cancel_signal);
  std::signal(SIGTERM, handle_cancel_signal);

  exp::ExecutorOptions eopts;
  eopts.workers = workers;
  eopts.run_timeout_seconds = spec->timeout_seconds;
  eopts.max_retries = opt->retries;
  eopts.cancel = &g_cancel;
  bool journal_broken = false;
  eopts.on_progress = [&](const exp::ProgressEvent& ev) {
    // Serialized by the executor: journal appends never interleave.
    if (!journal_broken && !journal->append(*ev.task, *ev.output, ev.wall_seconds, &err)) {
      journal_broken = true;
      std::fprintf(stderr,
                   "iosim-sweep: %s — journal disabled, this sweep cannot be "
                   "resumed\n",
                   err.c_str());
    }
    if (!opt->quiet) {
      std::fprintf(stderr, "[%zu/%zu] %s %.1fs  %s (repeat %d)%s\n", ev.done, ev.total,
                   ev.ok ? "ok  " : "FAIL", ev.wall_seconds,
                   points[ev.task->point_index].label().c_str(), ev.task->repeat,
                   ev.output->attempts > 1 ? " [retried]" : "");
    }
  };

  const double t0 = wall_now();
  const auto exec = exp::execute_all(pending, exp::make_run_fn(points), eopts);
  const double wall = wall_now() - t0;

  // --- Merge journal replay + this execution into one matrix view ----------
  exp::ExecResult merged;
  merged.outputs.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i < exec.outputs.size() && exec.outputs[i].has_value()) {
      merged.outputs[i] = exec.outputs[i];
    } else if (replayed[i].has_value()) {
      merged.outputs[i] = replayed[i];
    }
    if (!merged.outputs[i].has_value()) continue;
    if (merged.outputs[i]->ok) {
      ++merged.completed;
    } else {
      ++merged.failed;
      if (i < merged.first_error_run) {
        merged.first_error_run = i;
        merged.first_error = merged.outputs[i]->error;
      }
    }
  }
  merged.skipped = tasks.size() - merged.completed - merged.failed;
  merged.cancelled = exec.cancelled;
  merged.interrupted = exec.interrupted;

  if (merged.failed > 0) {
    std::fprintf(stderr,
                 "iosim-sweep: run %zu failed (%s); %zu completed, %zu skipped — "
                 "no BENCH JSON written (journal kept at %s; fix the cause and "
                 "rerun with --resume)\n",
                 merged.first_error_run, merged.first_error.c_str(), merged.completed,
                 merged.skipped, journal_path.c_str());
    return 1;
  }

  if (merged.interrupted) {
    // Graceful cancellation: dispatch stopped, in-flight runs drained and
    // are already journaled. Write an honest partial artifact and exit 130.
    const auto agg = exp::aggregate(*spec, points, tasks, merged);
    const std::string json = exp::to_json(*spec, agg, /*partial=*/true);
    if (!exp::write_file_atomic(out_path, json, &err)) {
      std::fprintf(stderr, "iosim-sweep: %s\n", err.c_str());
    } else {
      std::fprintf(stderr,
                   "iosim-sweep: cancelled by signal — %zu/%zu runs journaled, "
                   "partial BENCH -> %s (finish with --resume)\n",
                   merged.completed, tasks.size(), out_path.c_str());
    }
    return 130;
  }

  const auto agg = exp::aggregate(*spec, points, tasks, merged);
  const std::string json = exp::to_json(*spec, agg);
  if (!exp::write_file_atomic(out_path, json, &err)) {
    std::fprintf(stderr, "iosim-sweep: %s\n", err.c_str());
    return 1;
  }
  journal->close();
  ::unlink(journal_path.c_str());  // the BENCH file is durable; journal done

  auto tab = exp::to_table(*spec, agg);
  if (opt->csv) {
    std::fputs(tab.to_csv().c_str(), stdout);
  } else {
    tab.print();
  }
  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "iosim-sweep: writing the table to stdout failed\n");
    return 1;
  }
  std::fprintf(stderr, "%zu runs in %.1fs wall (%.2f runs/s, %d workers) -> %s\n",
               pending.size(), wall,
               wall > 0 ? static_cast<double>(pending.size()) / wall : 0.0, workers,
               out_path.c_str());
  return 0;
}
