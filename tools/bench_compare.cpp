// bench_compare — CI regression gate over two BENCH JSON files.
//
//   bench_compare BASELINE.json FRESH.json [--max-regress 0.25]
//
// Reads two bench reports in the standard BENCH format (bench_util.hpp /
// the sweep engine: {"bench_format":1,...,"metrics":{name:value,...}}) and
// compares every metric the baseline carries. The comparison direction is
// keyed off the metric-name suffix — the naming contract the benches
// follow:
//
//   *_per_sec   higher is better (throughput); regression = fresh falls
//               more than the threshold below the baseline
//   *_seconds   lower is better (wall clock); regression = fresh rises
//               more than the threshold above the baseline
//
// Metrics with any other suffix are printed but never gate (no direction
// is known for them). A metric present in the baseline but missing from
// the fresh report is a failure — a silently dropped probe must not turn
// the gate green. Metrics only in the fresh report are listed as new and
// pass (refreshing the baseline adopts them).
//
// Exit codes: 0 all gated metrics within threshold; 1 regression or
// missing metric; 2 usage / unreadable / malformed input. The perf-smoke
// CI job runs this against bench/baselines/micro_sim.json (see
// EXPERIMENTS.md "Reading the perf-smoke artifact").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/json_parse.hpp"

namespace {

struct Metric {
  std::string name;
  double value = 0.0;
};

enum class Dir { kHigherBetter, kLowerBetter, kUnknown };

Dir direction(const std::string& name) {
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with("_per_sec")) return Dir::kHigherBetter;
  if (ends_with("_seconds")) return Dir::kLowerBetter;
  return Dir::kUnknown;
}

bool load_metrics(const char* path, std::vector<Metric>* out, std::string* name) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  const auto doc = iosim::exp::json_parse(ss.str(), &err);
  if (!doc) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path, err.c_str());
    return false;
  }
  if (const auto* n = doc->find("name");
      n && n->kind == iosim::exp::JsonValue::Kind::kString) {
    *name = n->str;
  }
  const auto* metrics = doc->find("metrics");
  if (!metrics || metrics->kind != iosim::exp::JsonValue::Kind::kObject) {
    std::fprintf(stderr, "bench_compare: %s: no \"metrics\" object\n", path);
    return false;
  }
  for (const auto& [k, v] : metrics->obj) {
    if (v.kind != iosim::exp::JsonValue::Kind::kNumber) continue;
    out->push_back(Metric{k, v.num});
  }
  return true;
}

const Metric* find(const std::vector<Metric>& ms, const std::string& name) {
  for (const auto& m : ms) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASELINE.json FRESH.json "
               "[--max-regress FRACTION]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* fresh_path = nullptr;
  double max_regress = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
      char* end = nullptr;
      max_regress = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || max_regress < 0.0) return usage();
    } else if (!baseline_path) {
      baseline_path = argv[i];
    } else if (!fresh_path) {
      fresh_path = argv[i];
    } else {
      return usage();
    }
  }
  if (!baseline_path || !fresh_path) return usage();

  std::vector<Metric> base, fresh;
  std::string base_name, fresh_name;
  if (!load_metrics(baseline_path, &base, &base_name)) return 2;
  if (!load_metrics(fresh_path, &fresh, &fresh_name)) return 2;
  if (!base_name.empty() && !fresh_name.empty() && base_name != fresh_name) {
    std::fprintf(stderr, "bench_compare: comparing different benches (%s vs %s)\n",
                 base_name.c_str(), fresh_name.c_str());
    return 2;
  }

  std::printf("bench_compare: %s  (threshold %.0f%%)\n",
              base_name.empty() ? "<unnamed>" : base_name.c_str(),
              max_regress * 100.0);
  std::printf("  %-34s %14s %14s %9s  %s\n", "metric", "baseline", "fresh",
              "delta", "verdict");

  int failures = 0;
  for (const auto& b : base) {
    const Metric* f = find(fresh, b.name);
    if (!f) {
      std::printf("  %-34s %14.6g %14s %9s  MISSING\n", b.name.c_str(), b.value,
                  "-", "-");
      ++failures;
      continue;
    }
    const double delta = b.value != 0.0 ? (f->value - b.value) / b.value : 0.0;
    const Dir dir = direction(b.name);
    const char* verdict = "ok";
    if (dir == Dir::kUnknown) {
      verdict = "info";
    } else {
      const bool regressed = dir == Dir::kHigherBetter ? delta < -max_regress
                                                       : delta > max_regress;
      if (regressed) {
        verdict = "REGRESSED";
        ++failures;
      }
    }
    std::printf("  %-34s %14.6g %14.6g %+8.1f%%  %s\n", b.name.c_str(), b.value,
                f->value, delta * 100.0, verdict);
  }
  for (const auto& f : fresh) {
    if (!find(base, f.name)) {
      std::printf("  %-34s %14s %14.6g %9s  new (not gated)\n", f.name.c_str(),
                  "-", f.value, "-");
    }
  }

  if (failures > 0) {
    std::printf("bench_compare: FAIL — %d metric%s regressed or missing\n",
                failures, failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("bench_compare: PASS\n");
  return 0;
}
